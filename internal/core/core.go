// Package core implements the paper's contribution: closed-form prediction
// of the l2-norm distortion (MSE / NRMSE / PSNR) introduced by the
// quantization stage of prediction-based and orthogonal-transform-based
// lossy compressors, and the fixed-PSNR error-control mode built on it.
//
// The key identities (numbered as in the paper):
//
//	Eq. 3   MSE  ≈ (1/6) Σ δi³ · P(mi)          (general quantization)
//	Eq. 4   NRMSE = sqrt(MSE) / vr
//	Eq. 5   PSNR  = −10·log10(Σ δi³·P(mi)) + 10·log10 6 + 20·log10 vr
//	Eq. 6   PSNR  = 20·log10(vr/δ) + 10·log10 12     (uniform bins)
//	Eq. 7   PSNR  = 20·log10(vr/ebabs) + 10·log10 3  (SZ: δ = 2·ebabs)
//	Eq. 8   ebrel = √3 · 10^(−PSNR/20)
//
// (The printed form of Eq. 5 in the paper has its signs garbled; the
// version here is the one consistent with Eqs. 4 and 6, as the uniform-bin
// specialization confirms.)
//
// Fixed-PSNR compression is then a three-step procedure: take the user's
// target PSNR, derive the value-range-based relative error bound from
// Eq. 8 (ebabs = ebrel·vr), and run the ordinary error-bounded compressor
// once. Only the bound derivation — a handful of floating-point
// operations — is added to the compression pipeline.
package core

import (
	"fmt"
	"math"
)

// EstimatePSNRUniform predicts the PSNR of midpoint uniform quantization
// with bin width delta over data of value range vr (Eq. 6). The estimate
// assumes the quantized quantity is approximately uniform within each bin.
func EstimatePSNRUniform(vr, delta float64) float64 {
	if vr <= 0 {
		return math.Inf(1)
	}
	if delta <= 0 {
		return math.Inf(1)
	}
	return 20*math.Log10(vr/delta) + 10*math.Log10(12)
}

// EstimatePSNRFromAbsBound predicts the PSNR of SZ-style compression with
// absolute error bound ebAbs over data of value range vr (Eq. 7, using
// SZ's δ = 2·ebabs).
func EstimatePSNRFromAbsBound(vr, ebAbs float64) float64 {
	if vr <= 0 || ebAbs <= 0 {
		return math.Inf(1)
	}
	return 20*math.Log10(vr/ebAbs) + 10*math.Log10(3)
}

// EstimatePSNRFromRelBound predicts the PSNR from a value-range-based
// relative error bound ebrel = ebabs/vr (value-range form of Eq. 7).
func EstimatePSNRFromRelBound(ebRel float64) float64 {
	if ebRel <= 0 {
		return math.Inf(1)
	}
	return -20*math.Log10(ebRel) + 10*math.Log10(3)
}

// RelBoundForPSNR derives the value-range-based relative error bound that
// achieves the target PSNR (Eq. 8): ebrel = √3·10^(−PSNR/20).
func RelBoundForPSNR(targetPSNR float64) float64 {
	return math.Sqrt(3) * math.Pow(10, -targetPSNR/20)
}

// AbsBoundForPSNR derives the absolute error bound for the target PSNR
// given the data's value range: ebabs = ebrel·vr.
func AbsBoundForPSNR(targetPSNR, vr float64) float64 {
	return RelBoundForPSNR(targetPSNR) * vr
}

// DeltaForPSNR derives the uniform quantization bin width achieving the
// target PSNR for data of value range vr (inverse of Eq. 6). Useful for
// transform-domain quantizers that control δ directly rather than ebabs.
func DeltaForPSNR(targetPSNR, vr float64) float64 {
	return vr * math.Sqrt(12) * math.Pow(10, -targetPSNR/20)
}

// EstimateMSEFromLayout evaluates Eq. 3 for an arbitrary symmetric bin
// layout: widths[i] is the width δi of the i-th one-sided bin and
// density[i] the probability density P(mi) at its midpoint. The returned
// value already includes the ×2 symmetry factor.
func EstimateMSEFromLayout(widths, density []float64) (float64, error) {
	if len(widths) != len(density) {
		return 0, fmt.Errorf("core: %d widths but %d densities", len(widths), len(density))
	}
	var sum float64
	for i, w := range widths {
		if w < 0 || density[i] < 0 {
			return 0, fmt.Errorf("core: negative width or density at bin %d", i)
		}
		sum += w * w * w * density[i]
	}
	return sum / 6, nil
}

// EstimatePSNRFromLayout evaluates Eq. 5 for an arbitrary symmetric bin
// layout over data of value range vr.
func EstimatePSNRFromLayout(widths, density []float64, vr float64) (float64, error) {
	mse, err := EstimateMSEFromLayout(widths, density)
	if err != nil {
		return 0, err
	}
	if vr <= 0 {
		return math.Inf(1), nil
	}
	if mse == 0 {
		return math.Inf(1), nil
	}
	return -10*math.Log10(mse) + 20*math.Log10(vr), nil
}

// UniformAssumptionMSE returns δ²/12, the per-point MSE of midpoint
// uniform quantization under the uniform-within-bin assumption that
// underlies Eqs. 6–8.
func UniformAssumptionMSE(delta float64) float64 { return delta * delta / 12 }

// QuantizationMSE computes the *exact* expected distortion the SZ
// quantizer introduces for a given set of prediction errors: the mean of
// (e − round(e/δ)·δ)² over errors within the interval range. Errors
// outside the range become lossless literals and contribute zero. The
// second return value is the fraction of errors inside the range.
//
// The ablation experiment compares this against UniformAssumptionMSE to
// explain why low PSNR targets overshoot (Table II's 20 dB rows).
func QuantizationMSE(predErrors []float64, delta float64, radius int) (mse, inRange float64) {
	if len(predErrors) == 0 || delta <= 0 {
		return 0, 0
	}
	var sum float64
	hits := 0
	r := float64(radius)
	for _, e := range predErrors {
		q := math.Round(e / delta)
		if q >= r || q <= -r || math.IsNaN(q) {
			continue // literal: exact
		}
		res := e - q*delta
		sum += res * res
		hits++
	}
	return sum / float64(len(predErrors)), float64(hits) / float64(len(predErrors))
}

// Plan is the outcome of fixed-PSNR planning for one field: the derived
// bounds that the compressor should be run with.
type Plan struct {
	TargetPSNR float64
	ValueRange float64
	EbRel      float64 // value-range-based relative bound (Eq. 8)
	EbAbs      float64 // absolute bound handed to the compressor
	// Constant is true when the field has zero value range; compression
	// is then lossless by construction and any PSNR target is met.
	Constant bool
}

// PlanFixedPSNR derives the error bounds for a target PSNR given the
// field's value range. This is the entire runtime overhead of the
// fixed-PSNR mode. It returns an error for non-positive or non-finite
// targets.
func PlanFixedPSNR(targetPSNR, vr float64) (Plan, error) {
	if math.IsNaN(targetPSNR) || math.IsInf(targetPSNR, 0) || targetPSNR <= 0 {
		return Plan{}, fmt.Errorf("core: target PSNR must be positive and finite, got %g", targetPSNR)
	}
	if vr < 0 || math.IsNaN(vr) || math.IsInf(vr, 0) {
		return Plan{}, fmt.Errorf("core: invalid value range %g", vr)
	}
	p := Plan{
		TargetPSNR: targetPSNR,
		ValueRange: vr,
		EbRel:      RelBoundForPSNR(targetPSNR),
	}
	if vr == 0 {
		p.Constant = true
		return p, nil
	}
	p.EbAbs = p.EbRel * vr
	return p, nil
}
