package core

import (
	"fmt"
	"math"
)

// Fixed-ratio error control (FRaZ-style: "FRaZ: A Generic High-Fidelity
// Fixed-Ratio Lossy Compression Framework", Underwood et al.) is the
// second instance of the paper's control pattern: steer the codec's
// absolute bound until a measured statistic hits a user target. For fixed
// PSNR the statistic is the exact quantization MSE (calibrate.go); here it
// is the achieved compression ratio — aggregate compressed bytes per
// original byte — which every pipeline measures for free. The solver
// below proposes the next bound from the measured rate–distortion points;
// the generic loop in internal/plan drives it.

// WithinRatioTolerance reports whether an achieved compression ratio is
// within the relative band tolFrac of the target (two-sided: compressing
// too hard overshoots the ratio just as compressing too little
// undershoots it). Non-positive or non-finite measurements never pass.
func WithinRatioTolerance(achieved, target, tolFrac float64) bool {
	if !(achieved > 0) || math.IsInf(achieved, 0) {
		return false
	}
	return math.Abs(achieved-target) <= tolFrac*target
}

// InitialBoundForRatio guesses the first-pass absolute bound for a target
// compression ratio over data of value range vr stored at bpp bits per
// value. The quantized-entropy model — bitrate ≈ log2(vr/δ) − G bits per
// value, with G the (unknown, data-dependent) prediction gain — is
// inverted at an assumed mid-range gain; the guess only has to land on
// the measurable part of the rate curve, because the solver re-derives
// the bound from measured points after the first pass.
func InitialBoundForRatio(targetRatio, vr, bpp float64) float64 {
	if vr <= 0 {
		return 0
	}
	// Target bitrate bpp/R; assumed gain of ~7 bits covers typical smooth
	// scientific fields without starting absurdly lossy on rough ones.
	rel := math.Pow(2, -(bpp/targetRatio + 7))
	if rel < 1e-8 {
		rel = 1e-8
	}
	if rel > 0.25 {
		rel = 0.25
	}
	return rel * vr
}

// NextBoundFixedRatio proposes the next absolute bound for the fixed-ratio
// loop from one or two measured (bound, achieved-ratio) points.
//
// With two distinct points it takes a secant step in log–log space through
// the measured ratio(bound) curve, the same adaptive step the calibrated
// fixed-PSNR loop uses on its MSE(δ) curve. With one point — or when the
// curve has flattened (ratio no longer responding to the bound, e.g. the
// stream is header- or literal-dominated) — it falls back to the
// one-bit-per-doubling entropy model: each doubling of the bound removes
// about one bit per value from the quantized stream, so
//
//	next = b · 2^(bpp·(1/r − 1/target))
//
// where bpp is the uncompressed bits per value. The result is clamped to
// [latest/16, latest·16] to keep the loop stable; pass b1 ≤ 0 to use the
// single-point form.
func NextBoundFixedRatio(bpp, b0, r0, b1, r1, target float64) (float64, error) {
	if !(bpp > 0) || !(b0 > 0) || !(r0 > 0) || !(target > 0) {
		return 0, fmt.Errorf("core: NextBoundFixedRatio needs positive bpp, b0, r0, target")
	}
	if math.IsInf(b0, 0) || math.IsInf(r0, 0) || math.IsInf(b1, 0) || math.IsInf(r1, 0) ||
		math.IsNaN(b1) || math.IsNaN(r1) || math.IsInf(target, 0) || math.IsInf(bpp, 0) {
		return 0, fmt.Errorf("core: NextBoundFixedRatio needs finite inputs")
	}
	latest, rLatest := b0, r0
	if b1 > 0 && r1 > 0 {
		latest, rLatest = b1, r1
	}
	entropyStep := func(b, r float64) float64 {
		exp := bpp * (1/r - 1/target)
		// A wild exponent (tiny measured ratio vs huge target) would
		// overflow before the final clamp catches it.
		if exp > 8 {
			exp = 8
		}
		if exp < -8 {
			exp = -8
		}
		return b * math.Pow(2, exp)
	}
	var next float64
	if b1 > 0 && r1 > 0 && b1 != b0 && r1 != r0 {
		// log(ratio) ≈ a·log(bound) + c through the two points.
		a := (math.Log(r1) - math.Log(r0)) / (math.Log(b1) - math.Log(b0))
		if a < 0.01 {
			// Flat or inverted response; re-anchor on the entropy model.
			next = entropyStep(latest, rLatest)
		} else {
			next = math.Exp(math.Log(b1) + (math.Log(target)-math.Log(r1))/a)
		}
	} else {
		next = entropyStep(latest, rLatest)
	}
	lo, hi := latest/16, latest*16
	if next < lo {
		next = lo
	}
	if next > hi {
		next = hi
	}
	if !(next > 0) || math.IsInf(next, 0) || math.IsNaN(next) {
		return 0, fmt.Errorf("core: fixed-ratio step produced unusable bound %g", next)
	}
	return next, nil
}
