package core

import (
	"math"
	"testing"
)

func TestMSEForPSNRInvertsPSNR(t *testing.T) {
	for _, psnr := range []float64{20, 60, 100} {
		for _, vr := range []float64{1.0, 42.0, 1e6} {
			mse := MSEForPSNR(psnr, vr)
			back := -10*math.Log10(mse) + 20*math.Log10(vr)
			if math.Abs(back-psnr) > 1e-9 {
				t.Fatalf("psnr %g vr %g: round trip %g", psnr, vr, back)
			}
		}
	}
}

func TestNextDeltaSinglePointQuadraticLaw(t *testing.T) {
	// With one point and the δ²∝MSE law, doubling the target MSE scales
	// δ by √2.
	next, err := NextDelta(1.0, 1e-4, 0, 0, 2e-4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(next-math.Sqrt2) > 1e-12 {
		t.Fatalf("next = %g, want √2", next)
	}
}

func TestNextDeltaSecantRecoversPowerLaw(t *testing.T) {
	// If MSE = c·δ^a exactly, the secant step lands on the exact
	// solution for any a > 0.1.
	for _, a := range []float64{0.5, 1, 2, 3} {
		c := 7.5
		mseAt := func(d float64) float64 { return c * math.Pow(d, a) }
		d0, d1 := 1.0, 2.0
		target := mseAt(3.3)
		next, err := NextDelta(d0, mseAt(d0), d1, mseAt(d1), target)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(next-3.3) > 1e-9 {
			t.Fatalf("a=%g: next = %g, want 3.3", a, next)
		}
	}
}

func TestNextDeltaFlatCurveFallsBack(t *testing.T) {
	// A nearly flat MSE(δ) (saturation) must not explode: the step is
	// clamped to 16× the newest point.
	next, err := NextDelta(1.0, 1e-4, 2.0, 1.0000001e-4, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if next > 32 {
		t.Fatalf("flat-curve step not clamped: %g", next)
	}
}

func TestNextDeltaClamps(t *testing.T) {
	// Huge target jumps stay within [d/16, 16d].
	next, err := NextDelta(1.0, 1e-8, 0, 0, 1e8)
	if err != nil {
		t.Fatal(err)
	}
	if next != 16 {
		t.Fatalf("upper clamp: %g", next)
	}
	next, err = NextDelta(1.0, 1e8, 0, 0, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if next != 1.0/16 {
		t.Fatalf("lower clamp: %g", next)
	}
}

func TestNextDeltaValidates(t *testing.T) {
	if _, err := NextDelta(0, 1, 0, 0, 1); err == nil {
		t.Fatal("expected error for d0=0")
	}
	if _, err := NextDelta(1, 0, 0, 0, 1); err == nil {
		t.Fatal("expected error for mse0=0")
	}
	if _, err := NextDelta(1, 1, 0, 0, 0); err == nil {
		t.Fatal("expected error for target=0")
	}
}

func TestWithinTolerance(t *testing.T) {
	vr := 10.0
	mseAt := func(psnr float64) float64 { return MSEForPSNR(psnr, vr) }
	if !WithinTolerance(mseAt(80.3), 80, vr, 0.5) {
		t.Fatal("80.3 dB should be within 0.5 of 80")
	}
	if WithinTolerance(mseAt(81), 80, vr, 0.5) {
		t.Fatal("81 dB should be outside 0.5 of 80")
	}
	if WithinTolerance(mseAt(79), 80, vr, 0.5) {
		t.Fatal("79 dB should be outside 0.5 of 80")
	}
	if WithinTolerance(0, 80, vr, 0.5) {
		t.Fatal("lossless should not count as within tolerance")
	}
}
