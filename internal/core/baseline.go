package core

import (
	"fmt"
	"math"
)

// CompressProbe runs one error-bounded compression at the given relative
// bound and reports the actual PSNR of the reconstruction. The iterative
// baseline calls it repeatedly; the fixed-PSNR mode calls an equivalent
// once.
type CompressProbe func(ebRel float64) (actualPSNR float64, err error)

// SearchResult records the outcome of the iterative tuning baseline.
type SearchResult struct {
	EbRel      float64 // final relative bound
	ActualPSNR float64 // PSNR at the final bound
	Iterations int     // number of full compressions executed
	Converged  bool    // |actual − target| ≤ tol
}

// IterativeSearch emulates the paper's motivating workflow: a user without
// fixed-PSNR support who re-runs the compressor with different
// error-bound settings until the measured PSNR is within tolDB of the
// target. The search brackets the target by decade steps on the relative
// bound and then bisects in log space. Every probe is a full
// compress+decompress cycle, which is exactly the cost the fixed-PSNR mode
// eliminates.
//
// The search stops after maxIter probes; Converged reports whether the
// tolerance was met. PSNR is monotonically non-increasing in ebRel for
// the compressors in this module, which bisection relies on.
func IterativeSearch(targetPSNR, tolDB float64, maxIter int, probe CompressProbe) (SearchResult, error) {
	if maxIter <= 0 {
		maxIter = 50
	}
	if tolDB <= 0 {
		tolDB = 0.5
	}
	var res SearchResult

	try := func(ebRel float64) (float64, error) {
		res.Iterations++
		psnr, err := probe(ebRel)
		if err != nil {
			return 0, fmt.Errorf("core: probe at ebrel=%g: %w", ebRel, err)
		}
		res.EbRel, res.ActualPSNR = ebRel, psnr
		return psnr, nil
	}

	// A user's customary starting point: 1e-3 value-range-based bound.
	eb := 1e-3
	psnr, err := try(eb)
	if err != nil {
		return res, err
	}
	if math.Abs(psnr-targetPSNR) <= tolDB {
		res.Converged = true
		return res, nil
	}

	// Bracket the target with decade steps: smaller bound → higher PSNR.
	lo, hi := eb, eb // lo: bound giving PSNR ≥ target; hi: PSNR ≤ target
	if psnr < targetPSNR {
		for res.Iterations < maxIter {
			hi = eb
			eb /= 10
			if psnr, err = try(eb); err != nil {
				return res, err
			}
			if math.Abs(psnr-targetPSNR) <= tolDB {
				res.Converged = true
				return res, nil
			}
			if psnr >= targetPSNR {
				lo = eb
				break
			}
			if eb < 1e-16 {
				return res, fmt.Errorf("core: target PSNR %g dB unreachable (bound underflow)", targetPSNR)
			}
		}
	} else {
		for res.Iterations < maxIter {
			lo = eb
			eb *= 10
			if psnr, err = try(eb); err != nil {
				return res, err
			}
			if math.Abs(psnr-targetPSNR) <= tolDB {
				res.Converged = true
				return res, nil
			}
			if psnr <= targetPSNR {
				hi = eb
				break
			}
			if eb > 1 {
				// Bound above the full value range: accept the
				// coarsest setting as the bracket edge.
				hi = eb
				break
			}
		}
	}

	// Bisect in log space.
	for res.Iterations < maxIter {
		eb = math.Sqrt(lo * hi) // geometric midpoint
		if psnr, err = try(eb); err != nil {
			return res, err
		}
		if math.Abs(psnr-targetPSNR) <= tolDB {
			res.Converged = true
			return res, nil
		}
		if psnr > targetPSNR {
			lo = eb
		} else {
			hi = eb
		}
	}
	return res, nil
}
