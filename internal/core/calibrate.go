package core

import (
	"fmt"
	"math"
)

// The paper's conclusion names its future work: "explore more techniques
// to further improve the fixed-PSNR lossy compression, especially for the
// low compression-quality demands". This file implements such a
// technique, built on the paper's own Theorem 1: because the
// quantization-stage distortion equals the end-to-end distortion, the
// compressor can measure its exact MSE *during* compression — no
// decompression, no extra pass. The calibrated mode compresses once with
// the Eq. 8 bound, reads the exact MSE, and if the achieved PSNR
// overshoots the target beyond a tolerance, re-derives the bin width by a
// log–log secant step and recompresses. At high targets the first pass
// already lands within tolerance, so the refinement costs nothing; at
// 20–40 dB targets it converges in one or two extra passes and removes
// the Table II overshoot.

// MSEForPSNR converts a target PSNR into the target MSE for data of value
// range vr (inverting Eq. 4/5).
func MSEForPSNR(targetPSNR, vr float64) float64 {
	return vr * vr * math.Pow(10, -targetPSNR/10)
}

// NextDelta proposes the next quantization bin width for the
// self-correcting fixed-PSNR loop.
//
// With one measured point (d0, mse0) it scales by the ideal-quantizer law
// MSE ∝ δ²; with two points it takes a secant step in log–log space,
// which adapts to the data's actual MSE(δ) curve (flatter than quadratic
// once errors concentrate in the center bin). The result is clamped to
// [d·1/16, d·16] of the most recent point to keep the loop stable; pass
// d1 ≤ 0 to use the single-point form.
func NextDelta(d0, mse0, d1, mse1, targetMSE float64) (float64, error) {
	if !(d0 > 0) || !(mse0 > 0) || !(targetMSE > 0) {
		return 0, fmt.Errorf("core: NextDelta needs positive d0, mse0, targetMSE")
	}
	latest := d0
	var next float64
	if d1 > 0 && mse1 > 0 && d1 != d0 && mse1 != mse0 {
		latest = d1
		// log(mse) ≈ a·log(δ) + b through the two points.
		a := (math.Log(mse1) - math.Log(mse0)) / (math.Log(d1) - math.Log(d0))
		if a < 0.1 {
			// The curve has flattened (distortion saturating);
			// fall back to the quadratic law from the newest point.
			next = d1 * math.Sqrt(targetMSE/mse1)
		} else {
			next = math.Exp(math.Log(d1) + (math.Log(targetMSE)-math.Log(mse1))/a)
		}
	} else {
		next = d0 * math.Sqrt(targetMSE/mse0)
	}
	lo, hi := latest/16, latest*16
	if next < lo {
		next = lo
	}
	if next > hi {
		next = hi
	}
	return next, nil
}

// WithinTolerance reports whether a measured MSE achieves the target PSNR
// within tolDB (one-sided: overshoot beyond tolDB triggers refinement;
// undershoot beyond tolDB also does).
func WithinTolerance(mse, targetPSNR, vr, tolDB float64) bool {
	if mse <= 0 {
		return false // lossless: infinitely above target — refine
	}
	actual := -10*math.Log10(mse) + 20*math.Log10(vr)
	return math.Abs(actual-targetPSNR) <= tolDB
}
