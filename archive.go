package fixedpsnr

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"

	"fixedpsnr/internal/codec"
)

// Archive container: many compressed field streams in one blob, so a whole
// simulation snapshot (e.g. the 79 fields of a CESM-ATM dump) travels as
// one object while each field keeps its own header, bound, and codec.
//
// Archive v2 layout:
//
//	magic "FPSA"      4 bytes
//	version           1 byte (= 2)
//	entry streams     concatenated, no framing (the index locates them)
//	index:
//	  index magic "FPSI"   4 bytes
//	  count                uvarint
//	  per entry:           uvarint name length | name bytes |
//	                       uvarint offset (from file start) | uvarint length
//	footer:
//	  index offset    8 bytes uint64 LE
//	  footer magic "FPSE"  4 bytes
//
// The tail index makes ExtractField and ArchiveInfo O(1) in the number of
// uninvolved entries: a reader seeks to the footer, loads the index, and
// touches only the entries it needs — no sequential scan, no header
// parsing of other fields. The index is written last so the whole archive
// streams through an io.Writer without buffering (see ArchiveWriter).
//
// Version 1 archives (length-prefixed entries after the count, no index)
// remain readable; writers always produce v2.

// archiveMagic identifies an archive blob.
var archiveMagic = [4]byte{'F', 'P', 'S', 'A'}

// archiveIndexMagic opens the v2 tail index block.
var archiveIndexMagic = [4]byte{'F', 'P', 'S', 'I'}

// archiveFooterMagic closes a v2 archive.
var archiveFooterMagic = [4]byte{'F', 'P', 'S', 'E'}

const (
	archiveV1 = 1
	archiveV2 = 2
	// archiveFooterLen is the fixed v2 footer size: 8-byte index offset
	// plus the footer magic.
	archiveFooterLen = 12
	// maxArchiveEntries bounds the entry count a reader will accept.
	maxArchiveEntries = 1 << 20
)

// archiveEntry locates one stream inside an archive.
type archiveEntry struct {
	name   string
	off    int64
	length int64
}

// CompressFields compresses every field with the same options into one
// archive, parallelizing across fields (each field is compressed
// single-threaded so the speedup comes from field-level parallelism,
// which matches the multi-field snapshot workload). In ModePSNR every
// field gets its own Eq. 8 bound from its own value range — the paper's
// batch use case; in ModeRatio every field is steered to the shared
// TargetRatio, so the whole snapshot lands on it too.
//
// CompressFields is the one-shot wrapper over Encoder.EncodeBatch; hold
// an Encoder directly for cancellation and cross-call buffer reuse. For
// snapshots too large to hold in memory at once, use ArchiveWriter
// instead: it produces the identical format one field at a time.
func CompressFields(fields []*Field, opt Options) ([]byte, []*Result, error) {
	if len(fields) == 0 {
		return nil, nil, fmt.Errorf("fixedpsnr: no fields to archive")
	}
	enc, err := NewEncoder(WithOptions(opt))
	if err != nil {
		return nil, nil, err
	}
	streams, results, err := enc.EncodeBatch(context.Background(), fields)
	if err != nil {
		return nil, nil, err
	}

	total := 5 + archiveFooterLen
	for _, s := range streams {
		total += len(s) + binary.MaxVarintLen64
	}
	var buf bytes.Buffer
	buf.Grow(total)
	aw, err := NewArchiveWriter(&buf)
	if err != nil {
		return nil, nil, err
	}
	for i, s := range streams {
		// Register under the field's name even if the stream header
		// spells it differently (it never does; belt and braces).
		if err := aw.writeStreamNamed(fields[i].Name, s); err != nil {
			return nil, nil, err
		}
	}
	if err := aw.Close(); err != nil {
		return nil, nil, err
	}
	return buf.Bytes(), results, nil
}

// v1Entry is one stream located by the v1 scanner: its bytes plus its
// offset in the archive.
type v1Entry struct {
	off  int64
	blob []byte
}

// archiveEntriesV1 splits a version-1 archive into its per-field streams
// (no decompression). v1 has no index: entries are length-prefixed and
// must be scanned in order. The single walk records each entry's offset
// so callers never re-parse the framing.
func archiveEntriesV1(data []byte) ([]v1Entry, error) {
	if len(data) < 6 {
		return nil, fmt.Errorf("fixedpsnr: archive too short")
	}
	if [4]byte(data[:4]) != archiveMagic {
		return nil, fmt.Errorf("fixedpsnr: bad archive magic %q", data[:4])
	}
	if data[4] != archiveV1 {
		return nil, fmt.Errorf("fixedpsnr: unsupported archive version %d", data[4])
	}
	b := data[5:]
	count, k := binary.Uvarint(b)
	if k <= 0 {
		return nil, fmt.Errorf("fixedpsnr: truncated archive count")
	}
	if count > maxArchiveEntries {
		return nil, fmt.Errorf("fixedpsnr: unreasonable archive count %d", count)
	}
	b = b[k:]
	pos := int64(5 + k)
	entries := make([]v1Entry, 0, count)
	for i := uint64(0); i < count; i++ {
		l, k := binary.Uvarint(b)
		if k <= 0 {
			return nil, fmt.Errorf("fixedpsnr: truncated entry %d length", i)
		}
		b = b[k:]
		pos += int64(k)
		if uint64(len(b)) < l {
			return nil, fmt.Errorf("fixedpsnr: entry %d truncated (%d < %d)", i, len(b), l)
		}
		entries = append(entries, v1Entry{off: pos, blob: b[:l]})
		b = b[l:]
		pos += int64(l)
	}
	return entries, nil
}

// DecompressArchive reconstructs every field in the archive, in order,
// parallelizing across entries.
func DecompressArchive(data []byte) ([]*Field, error) {
	ar, err := openArchiveBytes(data)
	if err != nil {
		return nil, err
	}
	return ar.DecompressAll()
}

// ArchiveInfo returns the stream headers of every entry without
// decompressing any payload.
func ArchiveInfo(data []byte) ([]*StreamInfo, error) {
	ar, err := openArchiveBytes(data)
	if err != nil {
		return nil, err
	}
	infos := make([]*StreamInfo, ar.Len())
	for i := range infos {
		h, err := ar.Info(i)
		if err != nil {
			return nil, err
		}
		infos[i] = h
	}
	return infos, nil
}

// ExtractField decompresses only the named field from an archive. On a
// v2 archive this reads the tail index and the one matching entry; no
// other entry is parsed.
func ExtractField(data []byte, name string) (*Field, *StreamInfo, error) {
	ar, err := openArchiveBytes(data)
	if err != nil {
		return nil, nil, err
	}
	return ar.Extract(name)
}

// ExtractRegion decompresses only the sub-block starting at off with
// extents ext of the named field from an archive: the tail index locates
// the entry, the entry's chunk table locates the chunks, and only the
// intersecting chunks are decoded.
func ExtractRegion(data []byte, name string, off, ext []int) (*Field, *StreamInfo, error) {
	ar, err := openArchiveBytes(data)
	if err != nil {
		return nil, nil, err
	}
	return ar.ExtractRegion(name, off, ext)
}

// parseArchiveIndex decodes a v2 tail index block.
func parseArchiveIndex(b []byte, dataEnd int64) ([]archiveEntry, error) {
	if len(b) < 5 {
		return nil, fmt.Errorf("fixedpsnr: archive index too short")
	}
	if [4]byte(b[:4]) != archiveIndexMagic {
		return nil, fmt.Errorf("fixedpsnr: bad archive index magic %q", b[:4])
	}
	b = b[4:]
	count, b, err := codec.ReadUvarint(b)
	if err != nil {
		return nil, fmt.Errorf("fixedpsnr: truncated archive index count")
	}
	if count > maxArchiveEntries {
		return nil, fmt.Errorf("fixedpsnr: unreasonable archive count %d", count)
	}
	entries := make([]archiveEntry, 0, count)
	for i := uint64(0); i < count; i++ {
		nameLen, rest, err := codec.ReadUvarint(b)
		if err != nil {
			return nil, fmt.Errorf("fixedpsnr: index entry %d: truncated name length", i)
		}
		if nameLen > 1<<20 || uint64(len(rest)) < nameLen {
			return nil, fmt.Errorf("fixedpsnr: index entry %d: bad name length %d", i, nameLen)
		}
		name := string(rest[:nameLen])
		rest = rest[nameLen:]
		off, rest, err := codec.ReadUvarint(rest)
		if err != nil {
			return nil, fmt.Errorf("fixedpsnr: index entry %d: truncated offset", i)
		}
		length, rest, err := codec.ReadUvarint(rest)
		if err != nil {
			return nil, fmt.Errorf("fixedpsnr: index entry %d: truncated length", i)
		}
		// Compare as uint64 so offsets ≥ 2^63 cannot slip past the range
		// check by going negative in a signed conversion.
		if off < 5 || length == 0 || off > uint64(dataEnd) || length > uint64(dataEnd)-off {
			return nil, fmt.Errorf("fixedpsnr: index entry %d (%q): range [%d,+%d) outside archive data [5,%d)",
				i, name, off, length, dataEnd)
		}
		entries = append(entries, archiveEntry{name: name, off: int64(off), length: int64(length)})
		b = rest
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("fixedpsnr: %d trailing bytes after archive index", len(b))
	}
	return entries, nil
}
