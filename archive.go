package fixedpsnr

import (
	"encoding/binary"
	"fmt"

	"fixedpsnr/internal/parallel"
	"fixedpsnr/internal/sz"
)

// Archive container: many compressed field streams in one blob, so a whole
// simulation snapshot (e.g. the 79 fields of a CESM-ATM dump) travels as
// one object while each field keeps its own header, bound, and codec.
//
// Layout:
//
//	magic "FPSA"      4 bytes
//	version           1 byte
//	count             uvarint
//	per entry:        uvarint stream length | stream bytes
//
// Entries are self-describing fixedpsnr streams; ArchiveInfo reads their
// headers without decompressing payloads, and ExtractField decompresses a
// single entry.

// archiveMagic identifies an archive blob.
var archiveMagic = [4]byte{'F', 'P', 'S', 'A'}

const archiveVersion = 1

// CompressFields compresses every field with the same options into one
// archive, parallelizing across fields (each field is compressed
// single-threaded so the speedup comes from field-level parallelism,
// which matches the multi-field snapshot workload). In ModePSNR every
// field gets its own Eq. 8 bound from its own value range — the paper's
// batch use case.
func CompressFields(fields []*Field, opt Options) ([]byte, []*Result, error) {
	if len(fields) == 0 {
		return nil, nil, fmt.Errorf("fixedpsnr: no fields to archive")
	}
	perField := opt
	perField.Workers = 1
	streams := make([][]byte, len(fields))
	results := make([]*Result, len(fields))
	err := parallel.ForEach(len(fields), opt.Workers, func(i int) error {
		blob, res, err := Compress(fields[i], perField)
		if err != nil {
			return fmt.Errorf("fixedpsnr: field %q: %w", fields[i].Name, err)
		}
		streams[i] = blob
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	total := 8
	for _, s := range streams {
		total += len(s) + binary.MaxVarintLen64
	}
	out := make([]byte, 0, total)
	out = append(out, archiveMagic[:]...)
	out = append(out, archiveVersion)
	out = binary.AppendUvarint(out, uint64(len(streams)))
	for _, s := range streams {
		out = binary.AppendUvarint(out, uint64(len(s)))
		out = append(out, s...)
	}
	return out, results, nil
}

// archiveEntries splits an archive into its per-field streams (no
// decompression).
func archiveEntries(data []byte) ([][]byte, error) {
	if len(data) < 6 {
		return nil, fmt.Errorf("fixedpsnr: archive too short")
	}
	if [4]byte(data[:4]) != archiveMagic {
		return nil, fmt.Errorf("fixedpsnr: bad archive magic %q", data[:4])
	}
	if data[4] != archiveVersion {
		return nil, fmt.Errorf("fixedpsnr: unsupported archive version %d", data[4])
	}
	b := data[5:]
	count, k := binary.Uvarint(b)
	if k <= 0 {
		return nil, fmt.Errorf("fixedpsnr: truncated archive count")
	}
	if count > 1<<20 {
		return nil, fmt.Errorf("fixedpsnr: unreasonable archive count %d", count)
	}
	b = b[k:]
	entries := make([][]byte, 0, count)
	for i := uint64(0); i < count; i++ {
		l, k := binary.Uvarint(b)
		if k <= 0 {
			return nil, fmt.Errorf("fixedpsnr: truncated entry %d length", i)
		}
		b = b[k:]
		if uint64(len(b)) < l {
			return nil, fmt.Errorf("fixedpsnr: entry %d truncated (%d < %d)", i, len(b), l)
		}
		entries = append(entries, b[:l])
		b = b[l:]
	}
	return entries, nil
}

// DecompressArchive reconstructs every field in the archive, in order,
// parallelizing across entries.
func DecompressArchive(data []byte) ([]*Field, error) {
	entries, err := archiveEntries(data)
	if err != nil {
		return nil, err
	}
	fields := make([]*Field, len(entries))
	err = parallel.ForEach(len(entries), 0, func(i int) error {
		f, _, err := Decompress(entries[i])
		if err != nil {
			return fmt.Errorf("fixedpsnr: entry %d: %w", i, err)
		}
		fields[i] = f
		return nil
	})
	if err != nil {
		return nil, err
	}
	return fields, nil
}

// ArchiveInfo returns the stream headers of every entry without
// decompressing any payload.
func ArchiveInfo(data []byte) ([]*StreamInfo, error) {
	entries, err := archiveEntries(data)
	if err != nil {
		return nil, err
	}
	infos := make([]*StreamInfo, len(entries))
	for i, e := range entries {
		h, err := sz.ParseHeader(e)
		if err != nil {
			return nil, fmt.Errorf("fixedpsnr: entry %d: %w", i, err)
		}
		infos[i] = h
	}
	return infos, nil
}

// ExtractField decompresses only the named field from an archive.
func ExtractField(data []byte, name string) (*Field, *StreamInfo, error) {
	entries, err := archiveEntries(data)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		h, err := sz.ParseHeader(e)
		if err != nil {
			return nil, nil, err
		}
		if h.Name == name {
			return Decompress(e)
		}
	}
	return nil, nil, fmt.Errorf("fixedpsnr: archive has no field %q", name)
}
