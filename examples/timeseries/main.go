// Timeseries: replace temporal decimation with fixed-PSNR compression.
//
// The paper's introduction describes the status quo for storage-limited
// simulations (HACC): dump only every k-th snapshot, losing temporal
// continuity. This example generates an evolving field, archives it both
// ways at similar storage, and compares what an analyst can reconstruct.
//
// Run with: go run ./examples/timeseries
package main

import (
	"fmt"
	"log"
	"math"

	"fixedpsnr"
	"fixedpsnr/internal/datagen"
)

const (
	steps  = 24
	target = 60.0 // dB per snapshot
	k      = 4    // decimation factor to compare against
)

func main() {
	series, err := datagen.TimeSeries([]int{96, 128}, steps, datagen.TimeSeriesOptions{
		Beta: 3.4,
		Rho:  0.9,
		Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	n := series[0].Len()

	// --- Strategy A: keep every k-th snapshot, interpolate the rest. ---
	var decErr float64
	kept := 0
	for t := 0; t < steps; t++ {
		if t%k == 0 {
			kept++
			continue
		}
		t0 := (t / k) * k
		t1 := t0 + k
		if t1 >= steps {
			t1 = t0
		}
		w := float64(t-t0) / float64(k)
		if t1 == t0 {
			w = 0
		}
		for i := 0; i < n; i++ {
			approx := (1-w)*series[t0].Data[i] + w*series[t1].Data[i]
			d := series[t].Data[i] - approx
			decErr += d * d
		}
	}
	decBits := 32.0 * float64(kept) / float64(steps)

	// --- Strategy B: fixed-PSNR compress every snapshot. ---------------
	var cmpErr, totalBits float64
	for _, f := range series {
		stream, res, err := fixedpsnr.CompressFixedPSNR(f, target)
		if err != nil {
			log.Fatal(err)
		}
		g, _, err := fixedpsnr.Decompress(stream)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < n; i++ {
			d := f.Data[i] - g.Data[i]
			cmpErr += d * d
		}
		totalBits += res.BitRate
	}
	cmpBits := totalBits / float64(steps)

	// Pooled PSNR over the full series for both strategies.
	vrLo, vrHi := math.Inf(1), math.Inf(-1)
	for _, f := range series {
		lo, hi, _ := f.ValueRange()
		vrLo = math.Min(vrLo, lo)
		vrHi = math.Max(vrHi, hi)
	}
	vr := vrHi - vrLo
	psnr := func(sumSq float64) float64 {
		mse := sumSq / float64(steps*n)
		if mse == 0 {
			return math.Inf(1)
		}
		return -10*math.Log10(mse) + 20*math.Log10(vr)
	}

	fmt.Printf("archiving %d snapshots of a %v field:\n\n", steps, series[0].Dims)
	fmt.Printf("  decimate k=%d + interpolate: %5.2f bits/value  pooled PSNR %6.2f dB  (%d of %d steps kept)\n",
		k, decBits, psnr(decErr), kept, steps)
	fmt.Printf("  fixed-PSNR %g dB, all steps: %5.2f bits/value  pooled PSNR %6.2f dB  (%d of %d steps kept)\n",
		target, cmpBits, psnr(cmpErr), steps, steps)
	fmt.Println("\nsame storage class, every time step preserved, and tens of dB better fidelity —")
	fmt.Println("the motivation the paper opens with.")
}
