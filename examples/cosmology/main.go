// Cosmology: fixed-PSNR in one shot versus the traditional trial-and-error
// workflow, on an NYX-like baryon-density field.
//
// Before fixed-PSNR mode, reaching a target quality meant compressing,
// measuring the PSNR, adjusting the bound, and repeating — each iteration
// a full compression of the (in production, multi-GB) field. This example
// runs both workflows and reports what each costs.
//
// Run with: go run ./examples/cosmology
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"fixedpsnr"
	"fixedpsnr/datasets"
)

const target = 70.0 // dB

func main() {
	nyx := datasets.NYX(nil)
	f, err := nyx.FieldByName("baryon_density", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("field %s %v, %d points\n\n", f.Name, f.Dims, f.Len())

	// --- Traditional workflow: iterate on the relative bound. ---------
	start := time.Now()
	ebRel := 1e-3 // a typical first guess
	var iterations int
	var actual float64
	lo, hi := 0.0, 0.0
	for {
		iterations++
		actual = compressAt(f, ebRel)
		if math.Abs(actual-target) <= 0.5 || iterations >= 20 {
			break
		}
		// Bracket, then bisect in log space — what a careful user
		// scripts after the first few manual attempts.
		if actual < target {
			hi = ebRel
			if lo == 0 {
				ebRel /= 10
			} else {
				ebRel = math.Sqrt(lo * hi)
			}
		} else {
			lo = ebRel
			if hi == 0 {
				ebRel *= 10
			} else {
				ebRel = math.Sqrt(lo * hi)
			}
		}
	}
	searchTime := time.Since(start)
	fmt.Printf("traditional search: %d full compressions, %.0f ms, landed at %.2f dB (ebRel=%.3g)\n",
		iterations, float64(searchTime.Microseconds())/1000, actual, ebRel)

	// --- Fixed-PSNR workflow: derive the bound, compress once. --------
	start = time.Now()
	stream, res, err := fixedpsnr.Compress(f, fixedpsnr.Options{
		Mode:       fixedpsnr.ModePSNR,
		TargetPSNR: target,
	})
	if err != nil {
		log.Fatal(err)
	}
	g, _, err := fixedpsnr.Decompress(stream)
	if err != nil {
		log.Fatal(err)
	}
	fixedTime := time.Since(start)
	d := fixedpsnr.CompareFields(f, g)
	fmt.Printf("fixed-PSNR mode:    1 compression,  %.0f ms, landed at %.2f dB (ebRel=%.3g from Eq. 8)\n",
		float64(fixedTime.Microseconds())/1000, d.PSNR, res.EbRel)

	fmt.Printf("\nspeedup: %.1fx fewer compressions (%d -> 1)\n", float64(iterations), iterations)
	fmt.Printf("compression ratio at %g dB: %.1fx (%.2f bits/value)\n", target, res.Ratio, res.BitRate)
}

// compressAt performs one compress+decompress cycle at a value-range
// relative bound and returns the measured PSNR — the unit of work the
// traditional workflow repeats.
func compressAt(f *fixedpsnr.Field, ebRel float64) float64 {
	stream, _, err := fixedpsnr.Compress(f, fixedpsnr.Options{
		Mode:     fixedpsnr.ModeRel,
		RelBound: ebRel,
	})
	if err != nil {
		log.Fatal(err)
	}
	g, _, err := fixedpsnr.Decompress(stream)
	if err != nil {
		log.Fatal(err)
	}
	return fixedpsnr.CompareFields(f, g).PSNR
}
