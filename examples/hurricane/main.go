// Hurricane: fixed-PSNR across compressor families and error-control
// modes, on 3-D Hurricane-ISABEL-like fields.
//
// The paper's Theorem 1 covers prediction-based compressors (SZ) and
// Theorem 2 covers orthogonal-transform compressors. This example
// compresses the wind components with both pipelines at the same target
// PSNR — both land on target because both quantize uniformly in an
// l2-preserving domain — and then shows the pointwise-relative mode on a
// sparse hydrometeor field where range-based bounds are the wrong tool.
//
// Run with: go run ./examples/hurricane
package main

import (
	"fmt"
	"log"
	"math"

	"fixedpsnr"
	"fixedpsnr/datasets"
)

func main() {
	hur := datasets.Hurricane(nil)
	const target = 75.0

	fmt.Printf("fixed-PSNR at %g dB, SZ (Theorem 1) vs orthonormal-DCT (Theorem 2):\n\n", target)
	fmt.Printf("%-6s  %14s  %14s\n", "field", "SZ actual/ratio", "DCT actual/ratio")
	for _, name := range []string{"U", "V", "W", "TC", "P"} {
		f, err := hur.FieldByName(name, 0)
		if err != nil {
			log.Fatal(err)
		}
		szPSNR, szRatio := run(f, fixedpsnr.CompressorSZ, target)
		dctPSNR, dctRatio := run(f, fixedpsnr.CompressorTransform, target)
		fmt.Printf("%-6s  %6.2f / %5.1fx  %6.2f / %5.1fx\n", name, szPSNR, szRatio, dctPSNR, dctRatio)
	}

	// Pointwise-relative mode: for QCLOUD-like fields the interesting
	// signal spans orders of magnitude, so a range-based bound drowns
	// the small values; a pointwise relative bound preserves each
	// value's significant digits.
	f, err := hur.FieldByName("QCLOUD", 0)
	if err != nil {
		log.Fatal(err)
	}
	stream, res, err := fixedpsnr.Compress(f, fixedpsnr.Options{
		Mode:       fixedpsnr.ModePWRel,
		PWRelBound: 1e-3,
	})
	if err != nil {
		log.Fatal(err)
	}
	g, _, err := fixedpsnr.Decompress(stream)
	if err != nil {
		log.Fatal(err)
	}
	worst := 0.0
	for i, x := range f.Data {
		if x == 0 {
			continue
		}
		if rel := math.Abs(g.Data[i]-x) / math.Abs(x); rel > worst {
			worst = rel
		}
	}
	fmt.Printf("\nQCLOUD with pointwise-relative bound 1e-3: ratio=%.1fx, worst relative error=%.2e\n",
		res.Ratio, worst)
	fmt.Println("(every value keeps ~3 significant digits, including the smallest hydrometeor traces)")
}

func run(f *fixedpsnr.Field, c fixedpsnr.Compressor, target float64) (psnr, ratio float64) {
	stream, res, err := fixedpsnr.Compress(f, fixedpsnr.Options{
		Mode:       fixedpsnr.ModePSNR,
		TargetPSNR: target,
		Compressor: c,
	})
	if err != nil {
		log.Fatal(err)
	}
	g, _, err := fixedpsnr.Decompress(stream)
	if err != nil {
		log.Fatal(err)
	}
	return fixedpsnr.CompareFields(f, g).PSNR, res.Ratio
}
