// Quickstart: compress a field to a target PSNR in one shot.
//
// The fixed-PSNR mode converts the target PSNR into a value-range-based
// relative error bound in closed form (Eq. 8 of the paper) and runs the
// ordinary error-bounded compressor exactly once — no trial-and-error
// tuning of error bounds.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"fixedpsnr"
)

func main() {
	// Build a small synthetic 2-D field: a smooth wave with mild noise,
	// the kind of structure a climate field has.
	const rows, cols = 200, 300
	f := fixedpsnr.NewField("demo", fixedpsnr.Float32, rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			v := math.Sin(float64(i)/17) * math.Cos(float64(j)/23)
			v += 0.02 * math.Sin(float64(i*j)/1000)
			f.Set2(i, j, float64(float32(v))) // single precision, like real dumps
		}
	}

	// Compress to exactly the quality we want: 80 dB.
	const target = 80.0
	stream, res, err := fixedpsnr.CompressFixedPSNR(f, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed %d values: %d -> %d bytes (ratio %.1fx, %.2f bits/value)\n",
		res.NPoints, res.OriginalBytes, res.CompressedBytes, res.Ratio, res.BitRate)
	fmt.Printf("derived bounds: ebRel=%.3g ebAbs=%.3g (Eq. 8: sqrt(3)*10^(-PSNR/20))\n",
		res.EbRel, res.EbAbs)

	// Decompress and check the quality we actually got.
	g, info, err := fixedpsnr.Decompress(stream)
	if err != nil {
		log.Fatal(err)
	}
	d := fixedpsnr.CompareFields(f, g)
	fmt.Printf("codec=%v  target=%.0f dB  actual=%.2f dB  maxerr=%.3g\n",
		info.Codec, target, d.PSNR, d.MaxErr)

	if math.Abs(d.PSNR-target) > 1 {
		log.Fatalf("actual PSNR %.2f missed the target by more than 1 dB", d.PSNR)
	}
	fmt.Println("fixed-PSNR compression hit the target in a single pass ✓")
}
