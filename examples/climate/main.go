// Climate: batch-compress an entire CESM-ATM-like snapshot at a fixed
// quality.
//
// This is the workflow the paper's introduction motivates: a climate
// simulation dumps ~80 fields per snapshot, each with a different value
// range and smoothness. Without fixed-PSNR mode, reaching a uniform
// quality across fields means tuning an error bound per field by
// trial-and-error (80 fields × several compressions each). With it, each
// field's bound comes from one closed-form evaluation of Eq. 8.
//
// Run with: go run ./examples/climate
package main

import (
	"fmt"
	"log"
	"sort"

	"fixedpsnr"
	"fixedpsnr/datasets"
)

func main() {
	const target = 60.0 // dB — archive-quality for post-hoc analysis

	atm := datasets.ATM(nil) // 79 fields on the default 180×360 grid
	fields, err := atm.Fields(0)
	if err != nil {
		log.Fatal(err)
	}

	type row struct {
		name   string
		ebRel  float64
		ratio  float64
		actual float64
	}
	rows := make([]row, 0, len(fields))
	var totalIn, totalOut int

	for _, f := range fields {
		stream, res, err := fixedpsnr.Compress(f, fixedpsnr.Options{
			Mode:       fixedpsnr.ModePSNR,
			TargetPSNR: target,
		})
		if err != nil {
			log.Fatalf("%s: %v", f.Name, err)
		}
		g, _, err := fixedpsnr.Decompress(stream)
		if err != nil {
			log.Fatalf("%s: %v", f.Name, err)
		}
		d := fixedpsnr.CompareFields(f, g)
		rows = append(rows, row{f.Name, res.EbRel, res.Ratio, d.PSNR})
		totalIn += res.OriginalBytes
		totalOut += res.CompressedBytes
	}

	// Every field used the same derived relative bound — that is the
	// point: quality is uniform by construction, storage adapts.
	sort.Slice(rows, func(i, j int) bool { return rows[i].ratio > rows[j].ratio })
	fmt.Printf("compressed %d ATM fields at a fixed %g dB target\n\n", len(rows), target)
	fmt.Println("best-compressing fields:")
	for _, r := range rows[:5] {
		fmt.Printf("  %-10s ratio=%6.1fx  actual=%6.2f dB\n", r.name, r.ratio, r.actual)
	}
	fmt.Println("worst-compressing fields:")
	for _, r := range rows[len(rows)-5:] {
		fmt.Printf("  %-10s ratio=%6.1fx  actual=%6.2f dB\n", r.name, r.ratio, r.actual)
	}

	var worst, sum float64
	worst = rows[0].actual
	for _, r := range rows {
		sum += r.actual
		if r.actual < worst {
			worst = r.actual
		}
	}
	fmt.Printf("\nsnapshot: %.1f MB -> %.1f MB (%.1fx)\n",
		float64(totalIn)/(1<<20), float64(totalOut)/(1<<20),
		float64(totalIn)/float64(totalOut))
	fmt.Printf("actual PSNR: avg=%.2f dB, worst=%.2f dB (target %g dB)\n",
		sum/float64(len(rows)), worst, target)
	fmt.Printf("error-bound derivations: %d (one per field, closed form) — zero tuning runs\n", len(rows))
}
