//go:build !race

package fixedpsnr_test

// raceEnabled reports that the race detector is active.
const raceEnabled = false
