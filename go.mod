module fixedpsnr

go 1.24
