// Package datasets exposes the synthetic HPC data sets used by the
// experiments — laptop-scale stand-ins for the paper's Table I (NYX
// cosmology, CESM-ATM climate, Hurricane ISABEL). The fields are
// spectrally synthesized Gaussian random fields with per-variable domain
// transforms; see internal/datagen for the synthesis details and DESIGN.md
// for why the substitution preserves the paper's behaviour.
package datasets

import "fixedpsnr/internal/datagen"

// Dataset is a registry of synthetic fields (see datagen.Dataset).
type Dataset = datagen.Dataset

// Spec describes one synthetic field.
type Spec = datagen.Spec

// NYX returns the 6-field 3-D cosmology set. nil dims selects the default
// 64³ grid (the paper used 2048³).
func NYX(dims []int) *Dataset { return datagen.NYX(dims) }

// ATM returns the 79-field 2-D climate set. nil dims selects the default
// 180×360 grid (the paper used 1800×3600).
func ATM(dims []int) *Dataset { return datagen.ATM(dims) }

// Hurricane returns the 13-field 3-D hurricane set. nil dims selects the
// default 25×125×125 grid (the paper used 100×500×500).
func Hurricane(dims []int) *Dataset { return datagen.Hurricane(dims) }

// Registry returns all three data sets at default scale.
func Registry() []*Dataset { return datagen.Registry() }

// ByName returns a data set by name ("NYX", "ATM", "Hurricane").
func ByName(name string) (*Dataset, error) { return datagen.ByName(name) }
