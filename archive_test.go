package fixedpsnr_test

import (
	"math"
	"testing"

	"fixedpsnr"
	"fixedpsnr/datasets"
)

func archiveFields(t *testing.T) []*fixedpsnr.Field {
	t.Helper()
	hur := datasets.Hurricane([]int{6, 24, 24})
	fields, err := hur.Fields(0)
	if err != nil {
		t.Fatal(err)
	}
	return fields
}

func TestArchiveRoundTrip(t *testing.T) {
	fields := archiveFields(t)
	blob, results, err := fixedpsnr.CompressFields(fields, fixedpsnr.Options{
		Mode:       fixedpsnr.ModePSNR,
		TargetPSNR: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(fields) {
		t.Fatalf("got %d results", len(results))
	}
	out, err := fixedpsnr.DecompressArchive(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(fields) {
		t.Fatalf("got %d fields", len(out))
	}
	for i, f := range fields {
		if out[i].Name != f.Name {
			t.Fatalf("entry %d: name %q != %q (order must be preserved)", i, out[i].Name, f.Name)
		}
		d := fixedpsnr.CompareFields(f, out[i])
		// Eq. 6's worst case is 10·log10(3) ≈ 4.77 dB below target
		// (errors piled at bin edges); tiny rough fields can use ~2 dB
		// of that slack.
		if d.PSNR < 58 {
			t.Fatalf("%s: PSNR %g below target band", f.Name, d.PSNR)
		}
	}
}

func TestArchiveInfoWithoutDecompression(t *testing.T) {
	fields := archiveFields(t)
	blob, _, err := fixedpsnr.CompressFields(fields, fixedpsnr.Options{
		Mode:       fixedpsnr.ModePSNR,
		TargetPSNR: 70,
	})
	if err != nil {
		t.Fatal(err)
	}
	infos, err := fixedpsnr.ArchiveInfo(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(fields) {
		t.Fatalf("got %d infos", len(infos))
	}
	for i, h := range infos {
		if h.Name != fields[i].Name {
			t.Fatalf("entry %d: %q != %q", i, h.Name, fields[i].Name)
		}
		if h.TargetPSNR != 70 && !math.IsNaN(h.TargetPSNR) {
			// Constant fields have no target recorded; all Hurricane
			// fields are non-constant at this scale.
			t.Fatalf("entry %d: target %g", i, h.TargetPSNR)
		}
	}
}

func TestExtractSingleField(t *testing.T) {
	fields := archiveFields(t)
	blob, _, err := fixedpsnr.CompressFields(fields, fixedpsnr.Options{
		Mode:       fixedpsnr.ModePSNR,
		TargetPSNR: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, h, err := fixedpsnr.ExtractField(blob, "U")
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != "U" || h.Name != "U" {
		t.Fatalf("extracted %q", f.Name)
	}
	if _, _, err := fixedpsnr.ExtractField(blob, "NOPE"); err == nil {
		t.Fatal("expected error for unknown field")
	}
}

func TestArchiveRejectsGarbage(t *testing.T) {
	if _, err := fixedpsnr.DecompressArchive([]byte("nope")); err == nil {
		t.Fatal("expected error for garbage")
	}
	if _, err := fixedpsnr.ArchiveInfo(nil); err == nil {
		t.Fatal("expected error for nil")
	}
	// Valid magic, truncated body.
	blob, _, err := fixedpsnr.CompressFields(archiveFields(t), fixedpsnr.Options{
		Mode: fixedpsnr.ModeAbs, ErrorBound: 1e-3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fixedpsnr.DecompressArchive(blob[:len(blob)/2]); err == nil {
		t.Fatal("expected error for truncated archive")
	}
}

func TestCompressFieldsValidates(t *testing.T) {
	if _, _, err := fixedpsnr.CompressFields(nil, fixedpsnr.Options{}); err == nil {
		t.Fatal("expected error for empty field list")
	}
	bad := []*fixedpsnr.Field{fixedpsnr.NewField("x", fixedpsnr.Float32, 4)}
	bad[0].Dims = []int{5} // corrupt
	if _, _, err := fixedpsnr.CompressFields(bad, fixedpsnr.Options{Mode: fixedpsnr.ModeAbs, ErrorBound: 1}); err == nil {
		t.Fatal("expected error for invalid field")
	}
}
