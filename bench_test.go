package fixedpsnr_test

// Benchmark harness: one benchmark per paper table/figure (regenerating
// the experiment at a reduced scale suitable for testing.B iteration),
// plus compressor throughput and parallel-scaling benches.
//
// The full-scale experiment outputs come from cmd/fpsz-bench; these
// benchmarks measure the cost of regenerating each artifact and the
// steady-state performance of the pipelines.

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"fixedpsnr"
	"fixedpsnr/datasets"
	"fixedpsnr/internal/core"
	"fixedpsnr/internal/experiment"
)

// benchCfg keeps benchmark iterations affordable while preserving the
// experiment structure (all fields, all targets).
func benchCfg() experiment.Config {
	return experiment.Config{
		NYXDims:       []int{32, 32, 32},
		ATMDims:       []int{90, 180},
		HurricaneDims: []int{13, 64, 64},
	}
}

// --- Table I -------------------------------------------------------------

func BenchmarkTableI_DatasetGen(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		for _, ds := range cfg.Datasets() {
			if _, err := ds.Field(0, 0); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Figure 1 ------------------------------------------------------------

func BenchmarkFigure1_PredictionErrorHistogram(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Figure1(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 2 ------------------------------------------------------------

func benchmarkFigure2Panel(b *testing.B, target float64) {
	cfg := benchCfg()
	ds, err := cfg.Dataset("ATM")
	if err != nil {
		b.Fatal(err)
	}
	fields, err := ds.Fields(cfg.Workers)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunDataset(ds, fields, target, cfg.Workers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2_ATM40(b *testing.B)  { benchmarkFigure2Panel(b, 40) }
func BenchmarkFigure2_ATM80(b *testing.B)  { benchmarkFigure2Panel(b, 80) }
func BenchmarkFigure2_ATM120(b *testing.B) { benchmarkFigure2Panel(b, 120) }

// --- Table II ------------------------------------------------------------

func benchmarkTableIIDataset(b *testing.B, name string) {
	cfg := benchCfg()
	ds, err := cfg.Dataset(name)
	if err != nil {
		b.Fatal(err)
	}
	fields, err := ds.Fields(cfg.Workers)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, target := range experiment.Table2Targets {
			if _, err := experiment.RunDataset(ds, fields, target, cfg.Workers); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkTableII_NYX(b *testing.B)       { benchmarkTableIIDataset(b, "NYX") }
func BenchmarkTableII_ATM(b *testing.B)       { benchmarkTableIIDataset(b, "ATM") }
func BenchmarkTableII_Hurricane(b *testing.B) { benchmarkTableIIDataset(b, "Hurricane") }

// --- Overhead (paper §IV: "negligible") -----------------------------------

func BenchmarkOverhead_Eq8Derivation(b *testing.B) {
	sink := 0.0
	for i := 0; i < b.N; i++ {
		sink += core.RelBoundForPSNR(80 + float64(i%5))
	}
	if sink == 0 {
		b.Fatal("unexpected zero")
	}
}

func BenchmarkOverhead_PlanIncludingRangeScan(b *testing.B) {
	f := benchField2D()
	b.SetBytes(int64(f.Len() * 8))
	for i := 0; i < b.N; i++ {
		_, _, vr := f.ValueRange()
		if _, err := core.PlanFixedPSNR(80, vr); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Baseline (intro claim: multi-run tuning vs one-shot) ------------------

func BenchmarkIterativeBaseline(b *testing.B) {
	f := benchField2D()
	_, _, vr := f.ValueRange()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		probe := func(ebRel float64) (float64, error) {
			stream, _, err := fixedpsnr.Compress(f, fixedpsnr.Options{Mode: fixedpsnr.ModeAbs, ErrorBound: ebRel * vr, Workers: 1})
			if err != nil {
				return 0, err
			}
			g, _, err := fixedpsnr.Decompress(stream)
			if err != nil {
				return 0, err
			}
			return fixedpsnr.CompareFields(f, g).PSNR, nil
		}
		if _, err := core.IterativeSearch(80, 0.5, 40, probe); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFixedPSNROneShot(b *testing.B) {
	f := benchField2D()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := fixedpsnr.Compress(f, fixedpsnr.Options{Mode: fixedpsnr.ModePSNR, TargetPSNR: 80, Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Throughput ------------------------------------------------------------

var (
	benchFieldOnce sync.Once
	benchFields    map[string]*fixedpsnr.Field
)

func benchField(name string) *fixedpsnr.Field {
	benchFieldOnce.Do(func() {
		benchFields = map[string]*fixedpsnr.Field{}
		atm := datasets.ATM([]int{360, 720})
		f2, err := atm.FieldByName("TS", 0)
		if err != nil {
			panic(err)
		}
		benchFields["2d"] = f2
		hur := datasets.Hurricane([]int{25, 125, 125})
		f3, err := hur.FieldByName("U", 0)
		if err != nil {
			panic(err)
		}
		benchFields["3d"] = f3
	})
	return benchFields[name]
}

func benchField2D() *fixedpsnr.Field { return benchField("2d") }
func benchField3D() *fixedpsnr.Field { return benchField("3d") }

func benchmarkCompress(b *testing.B, f *fixedpsnr.Field, opt fixedpsnr.Options) {
	b.SetBytes(int64(f.SizeBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := fixedpsnr.Compress(f, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompress2D_SZ(b *testing.B) {
	benchmarkCompress(b, benchField2D(), fixedpsnr.Options{Mode: fixedpsnr.ModePSNR, TargetPSNR: 80, Workers: 1})
}

func BenchmarkCompress3D_SZ(b *testing.B) {
	benchmarkCompress(b, benchField3D(), fixedpsnr.Options{Mode: fixedpsnr.ModePSNR, TargetPSNR: 80, Workers: 1})
}

func BenchmarkCompress2D_Transform(b *testing.B) {
	benchmarkCompress(b, benchField2D(), fixedpsnr.Options{
		Mode: fixedpsnr.ModePSNR, TargetPSNR: 80,
		Compressor: fixedpsnr.CompressorTransform, Workers: 1,
	})
}

func BenchmarkCompress2D_PWRel(b *testing.B) {
	f := benchField2D()
	// Shift positive so the log transform sees no zeros.
	g := f.Clone()
	_, _, vr := g.ValueRange()
	min, _, _ := g.ValueRange()
	for i := range g.Data {
		g.Data[i] = g.Data[i] - min + 0.01*vr
	}
	benchmarkCompress(b, g, fixedpsnr.Options{Mode: fixedpsnr.ModePWRel, PWRelBound: 1e-3, Workers: 1})
}

func BenchmarkDecompress2D_SZ(b *testing.B) {
	f := benchField2D()
	stream, _, err := fixedpsnr.Compress(f, fixedpsnr.Options{Mode: fixedpsnr.ModePSNR, TargetPSNR: 80, Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(f.SizeBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := fixedpsnr.Decompress(stream); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Parallel scaling -------------------------------------------------------

func benchmarkParallel(b *testing.B, workers int) {
	f := benchField3D()
	b.SetBytes(int64(f.SizeBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := fixedpsnr.Compress(f, fixedpsnr.Options{
			Mode: fixedpsnr.ModePSNR, TargetPSNR: 80, Workers: workers,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParallelCompress_1Worker(b *testing.B)  { benchmarkParallel(b, 1) }
func BenchmarkParallelCompress_2Workers(b *testing.B) { benchmarkParallel(b, 2) }
func BenchmarkParallelCompress_4Workers(b *testing.B) { benchmarkParallel(b, 4) }

// --- Ablation: capacity sweep (design choice in DESIGN.md) ------------------

func benchmarkCapacity(b *testing.B, capacity int) {
	f := benchField2D()
	b.SetBytes(int64(f.SizeBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := fixedpsnr.Compress(f, fixedpsnr.Options{
			Mode: fixedpsnr.ModePSNR, TargetPSNR: 80, Capacity: capacity, Workers: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCapacity_256(b *testing.B)   { benchmarkCapacity(b, 256) }
func BenchmarkCapacity_4096(b *testing.B)  { benchmarkCapacity(b, 4096) }
func BenchmarkCapacity_65536(b *testing.B) { benchmarkCapacity(b, 65536) }

// --- Session API: one-shot vs reused Encoder --------------------------------

// sessionBenchField is the 500×500 float32 field the PR-2 acceptance
// benchmarks run on (BENCH_pr2.json in CI tracks these two).
func sessionBenchField() *fixedpsnr.Field {
	f := fixedpsnr.NewField("session-bench", fixedpsnr.Float32, 500, 500)
	for i := 0; i < 500; i++ {
		for j := 0; j < 500; j++ {
			v := math.Sin(float64(i)/23)*math.Cos(float64(j)/17) + 0.1*math.Sin(float64(i*j)/997)
			f.Set2(i, j, float64(float32(v)))
		}
	}
	return f
}

func BenchmarkOneShotCompress(b *testing.B) {
	f := sessionBenchField()
	opt := fixedpsnr.Options{Mode: fixedpsnr.ModePSNR, TargetPSNR: 80, Workers: 1}
	b.SetBytes(int64(f.SizeBytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := fixedpsnr.Compress(f, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncoderReuse(b *testing.B) {
	f := sessionBenchField()
	enc, err := fixedpsnr.NewEncoder(
		fixedpsnr.WithMode(fixedpsnr.ModePSNR),
		fixedpsnr.WithTargetPSNR(80),
		fixedpsnr.WithWorkers(1),
	)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if _, _, err := enc.Encode(ctx, f); err != nil { // warm the pools
		b.Fatal(err)
	}
	b.SetBytes(int64(f.SizeBytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := enc.Encode(ctx, f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeBatch(b *testing.B) {
	fields := make([]*fixedpsnr.Field, 8)
	for i := range fields {
		f := fixedpsnr.NewField(fmt.Sprintf("f%d", i), fixedpsnr.Float32, 200, 200)
		for j := range f.Data {
			f.Data[j] = float64(float32(math.Sin(float64(j+i*31) / 19)))
		}
		fields[i] = f
	}
	enc, err := fixedpsnr.NewEncoder(
		fixedpsnr.WithMode(fixedpsnr.ModePSNR),
		fixedpsnr.WithTargetPSNR(80),
	)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := enc.EncodeBatch(ctx, fields); err != nil {
			b.Fatal(err)
		}
	}
}

// Sanity: the benchmark field must actually hit its target, so that the
// throughput numbers describe a working configuration.
func TestBenchFieldSanity(t *testing.T) {
	f := benchField2D()
	stream, _, err := fixedpsnr.Compress(f, fixedpsnr.Options{Mode: fixedpsnr.ModePSNR, TargetPSNR: 80, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := fixedpsnr.Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if d := fixedpsnr.CompareFields(f, g); math.Abs(d.PSNR-80) > 1 {
		t.Fatalf("bench field missed target: %g", d.PSNR)
	}
}
