package fixedpsnr_test

import (
	"math"
	"testing"

	"fixedpsnr"
	"fixedpsnr/datasets"
)

// waveField builds a smooth single-precision test field.
func waveField(name string, dims ...int) *fixedpsnr.Field {
	f := fixedpsnr.NewField(name, fixedpsnr.Float32, dims...)
	n := f.Len()
	for i := 0; i < n; i++ {
		v := math.Sin(float64(i)/29) + 0.3*math.Cos(float64(i)/7)
		f.Data[i] = float64(float32(v))
	}
	return f
}

func TestFixedPSNRHitsTarget(t *testing.T) {
	f := waveField("wave", 120, 140)
	for _, target := range []float64{40, 60, 80, 100} {
		stream, res, err := fixedpsnr.Compress(f, fixedpsnr.Options{
			Mode:       fixedpsnr.ModePSNR,
			TargetPSNR: target,
		})
		if err != nil {
			t.Fatalf("target %g: %v", target, err)
		}
		if math.Abs(res.EstimatedPSNR-target) > 1e-9 {
			t.Fatalf("estimate %g != target %g", res.EstimatedPSNR, target)
		}
		g, _, err := fixedpsnr.Decompress(stream)
		if err != nil {
			t.Fatal(err)
		}
		d := fixedpsnr.CompareFields(f, g)
		if d.PSNR < target-1 || d.PSNR > target+15 {
			t.Fatalf("target %g: actual %g out of band", target, d.PSNR)
		}
	}
}

func TestCompressFixedPSNRShorthand(t *testing.T) {
	f := waveField("sh", 80, 80)
	stream, res, err := fixedpsnr.CompressFixedPSNR(f, 70)
	if err != nil {
		t.Fatal(err)
	}
	if res.TargetPSNR != 70 {
		t.Fatalf("TargetPSNR = %g", res.TargetPSNR)
	}
	g, info, err := fixedpsnr.Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if info.TargetPSNR != 70 {
		t.Fatalf("stream header target = %g", info.TargetPSNR)
	}
	d := fixedpsnr.CompareFields(f, g)
	if math.Abs(d.PSNR-70) > 1 {
		t.Fatalf("actual %g", d.PSNR)
	}
}

func TestModeAbsBoundsMaxError(t *testing.T) {
	f := waveField("abs", 90, 70)
	const eb = 1e-3
	stream, _, err := fixedpsnr.Compress(f, fixedpsnr.Options{Mode: fixedpsnr.ModeAbs, ErrorBound: eb})
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := fixedpsnr.Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if d := fixedpsnr.CompareFields(f, g); d.MaxErr > eb*(1+1e-12) {
		t.Fatalf("max error %g exceeds bound %g", d.MaxErr, eb)
	}
}

func TestModeRelBoundsMaxError(t *testing.T) {
	f := waveField("rel", 90, 70)
	_, _, vr := f.ValueRange()
	const rel = 1e-4
	stream, res, err := fixedpsnr.Compress(f, fixedpsnr.Options{Mode: fixedpsnr.ModeRel, RelBound: rel})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.EbAbs-rel*vr) > 1e-15 {
		t.Fatalf("EbAbs = %g, want %g", res.EbAbs, rel*vr)
	}
	g, _, err := fixedpsnr.Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if d := fixedpsnr.CompareFields(f, g); d.MaxErr > rel*vr*(1+1e-12) {
		t.Fatalf("max error %g exceeds bound %g", d.MaxErr, rel*vr)
	}
}

func TestModePWRel(t *testing.T) {
	f := fixedpsnr.NewField("pw", fixedpsnr.Float64, 500)
	for i := range f.Data {
		f.Data[i] = math.Exp(float64(i%37) - 18)
	}
	stream, _, err := fixedpsnr.Compress(f, fixedpsnr.Options{Mode: fixedpsnr.ModePWRel, PWRelBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := fixedpsnr.Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Data {
		if f.Data[i] == 0 {
			continue
		}
		if rel := math.Abs(g.Data[i]-f.Data[i]) / math.Abs(f.Data[i]); rel > 1e-3*(1+1e-9) {
			t.Fatalf("pointwise bound violated at %d: %g", i, rel)
		}
	}
}

func TestTransformPipelineFixedPSNR(t *testing.T) {
	f := waveField("dct", 96, 96)
	stream, _, err := fixedpsnr.Compress(f, fixedpsnr.Options{
		Mode:       fixedpsnr.ModePSNR,
		TargetPSNR: 70,
		Compressor: fixedpsnr.CompressorTransform,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, info, err := fixedpsnr.Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if info.Codec.String() != "otc-dct" {
		t.Fatalf("codec = %v", info.Codec)
	}
	d := fixedpsnr.CompareFields(f, g)
	if d.PSNR < 69 || d.PSNR > 90 {
		t.Fatalf("transform actual %g", d.PSNR)
	}
}

func TestOptionValidation(t *testing.T) {
	f := waveField("bad", 32, 32)
	cases := []fixedpsnr.Options{
		{Mode: fixedpsnr.ModeAbs},                  // missing bound
		{Mode: fixedpsnr.ModeRel},                  // missing bound
		{Mode: fixedpsnr.ModePSNR, TargetPSNR: -3}, // bad target
		{Mode: fixedpsnr.ModePWRel, PWRelBound: 2}, // bad pwrel
		{Mode: fixedpsnr.ModePWRel, PWRelBound: 0.1, Compressor: fixedpsnr.CompressorTransform}, // unsupported combo
		{Mode: fixedpsnr.Mode(42), ErrorBound: 1},                                               // unknown mode
		{Mode: fixedpsnr.ModeAbs, ErrorBound: 1, Compressor: fixedpsnr.Compressor(9)},           // unknown pipeline
	}
	for i, opt := range cases {
		if _, _, err := fixedpsnr.Compress(f, opt); err == nil {
			t.Fatalf("case %d: expected error for %+v", i, opt)
		}
	}
}

func TestConstantFieldAnyMode(t *testing.T) {
	f := fixedpsnr.NewField("const", fixedpsnr.Float32, 20, 20)
	for i := range f.Data {
		f.Data[i] = 7
	}
	for _, opt := range []fixedpsnr.Options{
		{Mode: fixedpsnr.ModeAbs},
		{Mode: fixedpsnr.ModePSNR, TargetPSNR: 100},
	} {
		stream, _, err := fixedpsnr.Compress(f, opt)
		if err != nil {
			t.Fatalf("%v: %v", opt.Mode, err)
		}
		g, _, err := fixedpsnr.Decompress(stream)
		if err != nil {
			t.Fatal(err)
		}
		for i := range g.Data {
			if g.Data[i] != 7 {
				t.Fatalf("%v: constant broken", opt.Mode)
			}
		}
	}
}

func TestInspectWithoutDecompression(t *testing.T) {
	f := waveField("insp", 40, 40)
	stream, _, err := fixedpsnr.CompressFixedPSNR(f, 88)
	if err != nil {
		t.Fatal(err)
	}
	h, err := fixedpsnr.Inspect(stream)
	if err != nil {
		t.Fatal(err)
	}
	if h.Name != "insp" || h.TargetPSNR != 88 || h.NPoints() != 1600 {
		t.Fatalf("header: %+v", h)
	}
}

func TestDecompressRejectsGarbage(t *testing.T) {
	if _, _, err := fixedpsnr.Decompress([]byte("garbage stream")); err == nil {
		t.Fatal("expected error")
	}
}

func TestEq8Helpers(t *testing.T) {
	// RelBoundForPSNR and EstimatePSNR must be inverses through a range.
	for _, p := range []float64{20, 55.5, 90, 131} {
		eb := fixedpsnr.RelBoundForPSNR(p)
		if back := fixedpsnr.EstimatePSNR(1, eb); math.Abs(back-p) > 1e-9 {
			t.Fatalf("PSNR %g -> ebrel %g -> %g", p, eb, back)
		}
	}
	plan, err := fixedpsnr.PlanFixedPSNR(80, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.EbAbs-10*plan.EbRel) > 1e-15 {
		t.Fatalf("plan inconsistent: %+v", plan)
	}
}

func TestFieldFromData(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	f, err := fixedpsnr.FieldFromData("wrapped", fixedpsnr.Float64, data, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if f.At2(1, 2) != 6 {
		t.Fatal("indexing broken")
	}
	if _, err := fixedpsnr.FieldFromData("bad", fixedpsnr.Float64, data, 4, 2); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestModeStrings(t *testing.T) {
	if fixedpsnr.ModePSNR.String() != "psnr" || fixedpsnr.CompressorTransform.String() != "transform" {
		t.Fatal("string names wrong")
	}
	if fixedpsnr.Mode(9).String() == "" || fixedpsnr.Compressor(9).String() == "" {
		t.Fatal("unknown values should still render")
	}
}

// End-to-end: a real synthetic data-set field through the public API.
func TestDatasetFieldRoundTrip(t *testing.T) {
	hur := datasets.Hurricane([]int{8, 32, 32})
	f, err := hur.FieldByName("U", 0)
	if err != nil {
		t.Fatal(err)
	}
	stream, res, err := fixedpsnr.CompressFixedPSNR(f, 65)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio <= 1 {
		t.Fatalf("ratio %g", res.Ratio)
	}
	g, _, err := fixedpsnr.Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	d := fixedpsnr.CompareFields(f, g)
	if d.PSNR < 64 {
		t.Fatalf("actual %g below 65-1", d.PSNR)
	}
}

func TestDatasetsPackage(t *testing.T) {
	if len(datasets.Registry()) != 3 {
		t.Fatal("registry size")
	}
	if _, err := datasets.ByName("ATM"); err != nil {
		t.Fatal(err)
	}
	if datasets.ATM(nil).NumFields() != 79 {
		t.Fatal("ATM field count")
	}
	if datasets.NYX(nil).NumFields() != 6 {
		t.Fatal("NYX field count")
	}
}

func TestWaveletPipelineFixedPSNR(t *testing.T) {
	f := waveField("haar", 64, 96)
	stream, _, err := fixedpsnr.Compress(f, fixedpsnr.Options{
		Mode:       fixedpsnr.ModePSNR,
		TargetPSNR: 70,
		Compressor: fixedpsnr.CompressorWavelet,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := fixedpsnr.Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	d := fixedpsnr.CompareFields(f, g)
	if d.PSNR < 69 || d.PSNR > 90 {
		t.Fatalf("wavelet actual %g", d.PSNR)
	}
	if fixedpsnr.CompressorWavelet.String() != "wavelet" {
		t.Fatal("name wrong")
	}
}

// The calibrated mode must land within ±0.5 dB at low targets where the
// plain Eq.-8 mode overshoots, and must not regress at high targets.
func TestCalibratedModeTightensLowTargets(t *testing.T) {
	hur := datasets.Hurricane([]int{10, 48, 48})
	f, err := hur.FieldByName("TC", 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []float64{30, 40, 80} {
		stream, res, err := fixedpsnr.Compress(f, fixedpsnr.Options{
			Mode:       fixedpsnr.ModePSNR,
			TargetPSNR: target,
			Calibrated: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		g, _, err := fixedpsnr.Decompress(stream)
		if err != nil {
			t.Fatal(err)
		}
		d := fixedpsnr.CompareFields(f, g)
		if math.Abs(d.PSNR-target) > 0.75 {
			t.Fatalf("calibrated target %g: actual %g (ebAbs %g)", target, d.PSNR, res.EbAbs)
		}
	}
}

// Result.MSE measured during compression must equal the decompressed MSE
// exactly — this is Theorem 1 used as a feature.
func TestCompressionReportsExactMSE(t *testing.T) {
	f := waveField("msecheck", 70, 90)
	stream, res, err := fixedpsnr.Compress(f, fixedpsnr.Options{Mode: fixedpsnr.ModeAbs, ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := fixedpsnr.Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	d := fixedpsnr.CompareFields(f, g)
	if math.Abs(res.MSE-d.MSE) > 1e-15*(1+d.MSE) {
		t.Fatalf("in-compression MSE %g != decompressed MSE %g", res.MSE, d.MSE)
	}
	if math.Abs(res.MeasuredPSNR-d.PSNR) > 1e-9 {
		t.Fatalf("in-compression PSNR %g != decompressed PSNR %g", res.MeasuredPSNR, d.PSNR)
	}
}
