package fixedpsnr_test

// Hot-loop throughput benchmarks: encode and decode MB/s on the chunkbench
// field at 1 core and all cores. These are the datapoints the CI bench job
// folds into BENCH_pr*.json via `fpsz-bench gobench`, so single-thread
// bandwidth and core scaling are both tracked across PRs.
//
// The field is the same synthetic used by `fpsz-bench chunk` (separable
// trigonometric modes plus a high-frequency perturbation), at a reduced
// 128×192×192 so benchmark iterations stay affordable; MB/s numbers are
// directly comparable across runs of the same grid.

import (
	"context"
	"math"
	"runtime"
	"sync"
	"testing"

	"fixedpsnr"
)

var (
	hotFieldOnce sync.Once
	hotField     *fixedpsnr.Field
)

// chunkBenchField materializes the benchmark field (value range ⊂ [-2, 2]).
func chunkBenchField() *fixedpsnr.Field {
	hotFieldOnce.Do(func() {
		dims := []int{128, 192, 192}
		f := fixedpsnr.NewField("chunkbench", fixedpsnr.Float32, dims...)
		plane := dims[1] * dims[2]
		for i := range f.Data {
			x := i / plane
			rem := i % plane
			y := rem / dims[2]
			z := rem % dims[2]
			v := math.Sin(float64(x)/17)*math.Cos(float64(y)/23) +
				0.5*math.Sin(float64(z)/11) +
				0.05*math.Sin(float64(i)/3)
			f.Data[i] = float64(float32(v))
		}
		hotField = f
	})
	return hotField
}

// withCores pins both the scheduler (GOMAXPROCS, which bounds the decode
// path's worker pool) and reports the bound so MB/s is per-configuration.
func withCores(b *testing.B, cores int) {
	b.Helper()
	prev := runtime.GOMAXPROCS(cores)
	b.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

func benchmarkChunkedEncode(b *testing.B, cores int) {
	f := chunkBenchField()
	withCores(b, cores)
	enc, err := fixedpsnr.NewEncoder(
		fixedpsnr.WithMode(fixedpsnr.ModePSNR),
		fixedpsnr.WithTargetPSNR(80),
		fixedpsnr.WithWorkers(cores),
	)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if _, _, err := enc.Encode(ctx, f); err != nil { // warm pools + solver
		b.Fatal(err)
	}
	b.SetBytes(int64(f.SizeBytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := enc.Encode(ctx, f); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkChunkedDecode(b *testing.B, cores int) {
	f := chunkBenchField()
	stream, _, err := fixedpsnr.Compress(f, fixedpsnr.Options{
		Mode: fixedpsnr.ModePSNR, TargetPSNR: 80,
	})
	if err != nil {
		b.Fatal(err)
	}
	withCores(b, cores)
	dec := fixedpsnr.NewDecoder()
	ctx := context.Background()
	if _, _, err := dec.Decode(ctx, stream); err != nil { // warm pools
		b.Fatal(err)
	}
	b.SetBytes(int64(f.SizeBytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := dec.Decode(ctx, stream); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChunkedEncode1Core(b *testing.B)    { benchmarkChunkedEncode(b, 1) }
func BenchmarkChunkedEncodeAllCores(b *testing.B) { benchmarkChunkedEncode(b, runtime.NumCPU()) }
func BenchmarkChunkedDecode1Core(b *testing.B)    { benchmarkChunkedDecode(b, 1) }
func BenchmarkChunkedDecodeAllCores(b *testing.B) { benchmarkChunkedDecode(b, runtime.NumCPU()) }
