package fixedpsnr_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"fixedpsnr"
)

// mixedVersionStreams builds one stream per stream-format version: a v1
// and a v2 legacy re-serialization plus a natural chunked v3 stream,
// each under its own field name.
func mixedVersionStreams(t *testing.T) (streams [][]byte, fields []*fixedpsnr.Field) {
	t.Helper()
	opt := fixedpsnr.Options{Mode: fixedpsnr.ModeAbs, ErrorBound: 1e-3, ChunkRows: 8, Workers: 2}
	for _, spec := range []struct {
		name    string
		version byte // 0 = keep the native v3 stream
	}{
		{"legacy-v1", 1},
		{"legacy-v2", 2},
		{"chunked-v3", 0},
	} {
		f := noisyField(spec.name, 0.05, 24, 16, 8)
		blob, _, err := fixedpsnr.Compress(f, opt)
		if err != nil {
			t.Fatal(err)
		}
		if spec.version != 0 {
			blob = legacyStream(t, blob, spec.version)
		}
		streams = append(streams, blob)
		fields = append(fields, f)
	}
	return streams, fields
}

// An archive can mix v1, v2, and chunked v3 streams; ExtractField and
// ArchiveInfo must handle every entry regardless of its stream version.
func TestArchiveCrossVersionStreams(t *testing.T) {
	streams, fields := mixedVersionStreams(t)

	var buf bytes.Buffer
	aw, err := fixedpsnr.NewArchiveWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range streams {
		if err := aw.WriteStream(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	archives := map[string][]byte{
		"v2-archive": buf.Bytes(),
		"v1-archive": buildV1Archive(streams),
	}

	for aname, blob := range archives {
		infos, err := fixedpsnr.ArchiveInfo(blob)
		if err != nil {
			t.Fatalf("%s: %v", aname, err)
		}
		if len(infos) != 3 {
			t.Fatalf("%s: %d entries", aname, len(infos))
		}
		wantVersions := []uint8{1, 2, 3}
		for i, info := range infos {
			if info.Name != fields[i].Name {
				t.Fatalf("%s: entry %d named %q", aname, i, info.Name)
			}
			if info.Version != wantVersions[i] {
				t.Fatalf("%s: entry %d stream version %d, want %d", aname, i, info.Version, wantVersions[i])
			}
			if len(info.Chunks) == 0 {
				t.Fatalf("%s: entry %d has no chunk table", aname, i)
			}
		}
		for i, f := range fields {
			g, h, err := fixedpsnr.ExtractField(blob, f.Name)
			if err != nil {
				t.Fatalf("%s: extract %q: %v", aname, f.Name, err)
			}
			if h.Version != wantVersions[i] {
				t.Fatalf("%s: %q extracted as version %d", aname, f.Name, h.Version)
			}
			d := fixedpsnr.CompareFields(f, g)
			if d.MaxErr > 1e-3*(1+1e-12) {
				t.Fatalf("%s: %q max error %g", aname, f.Name, d.MaxErr)
			}
		}
	}
}

// Region extraction works across stream versions in one archive — the
// chunked v3 entry through chunk-granular reads, legacy entries through
// the fallback — and byte-matches the slice of a full extract. The
// file-backed path exercises the ReadAt-based chunk fetches.
func TestArchiveExtractRegionCrossVersion(t *testing.T) {
	streams, fields := mixedVersionStreams(t)
	var buf bytes.Buffer
	aw, err := fixedpsnr.NewArchiveWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range streams {
		if err := aw.WriteStream(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "mixed.fpsa")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	off, ext := []int{5, 2, 1}, []int{10, 8, 4}
	check := func(extract func(name string, off, ext []int) (*fixedpsnr.Field, *fixedpsnr.StreamInfo, error)) {
		t.Helper()
		for _, f := range fields {
			got, _, err := extract(f.Name, off, ext)
			if err != nil {
				t.Fatalf("%q: %v", f.Name, err)
			}
			full, _, err := fixedpsnr.ExtractField(buf.Bytes(), f.Name)
			if err != nil {
				t.Fatal(err)
			}
			want, err := full.Slice(off, ext)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("%q: region differs at %d", f.Name, i)
				}
			}
		}
	}

	// In-memory blob path.
	check(func(name string, off, ext []int) (*fixedpsnr.Field, *fixedpsnr.StreamInfo, error) {
		return fixedpsnr.ExtractRegion(buf.Bytes(), name, off, ext)
	})
	// File-backed path: chunk payloads are fetched by ReadAt.
	ar, err := fixedpsnr.OpenArchiveFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ar.Close()
	check(ar.ExtractRegion)

	if _, _, err := ar.ExtractRegion("missing", off, ext); err == nil {
		t.Fatal("region extract of a missing field succeeded")
	}
	if _, _, err := ar.ExtractRegion(fields[2].Name, []int{0, 0, 0}, []int{99, 1, 1}); err == nil {
		t.Fatal("oversized region accepted")
	}
}
