package fixedpsnr_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"

	"fixedpsnr"
)

// sessionOpts is the reference configuration the session tests share.
func sessionOpts() []fixedpsnr.Option {
	return []fixedpsnr.Option{
		fixedpsnr.WithMode(fixedpsnr.ModePSNR),
		fixedpsnr.WithTargetPSNR(80),
		fixedpsnr.WithWorkers(1),
	}
}

func mustEncoder(t *testing.T, opts ...fixedpsnr.Option) *fixedpsnr.Encoder {
	t.Helper()
	enc, err := fixedpsnr.NewEncoder(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

// A session Encoder must produce byte-identical streams to the one-shot
// Compress under the same options — buffer reuse is invisible in the
// output.
func TestEncoderMatchesOneShotByteForByte(t *testing.T) {
	f := waveField("session", 120, 140)
	opt := fixedpsnr.Options{Mode: fixedpsnr.ModePSNR, TargetPSNR: 80, Workers: 1}
	want, wantRes, err := fixedpsnr.Compress(f, opt)
	if err != nil {
		t.Fatal(err)
	}
	enc := mustEncoder(t, fixedpsnr.WithOptions(opt))
	for pass := 0; pass < 3; pass++ { // repeated calls exercise warm pools
		got, res, err := enc.Encode(context.Background(), f)
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("pass %d: session stream differs from one-shot stream", pass)
		}
		if res.CompressedBytes != wantRes.CompressedBytes || res.EbAbs != wantRes.EbAbs {
			t.Fatalf("pass %d: result mismatch: %+v vs %+v", pass, res, wantRes)
		}
	}
}

func TestEncodeToAndDecodeFromRoundTrip(t *testing.T) {
	f := waveField("streamio", 90, 110)
	enc := mustEncoder(t, sessionOpts()...)
	ctx := context.Background()

	want, _, err := enc.Encode(ctx, f)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res, err := enc.EncodeTo(ctx, &buf, f)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("EncodeTo bytes differ from Encode bytes")
	}
	if res.CompressedBytes != len(want) {
		t.Fatalf("result reports %d bytes, wrote %d", res.CompressedBytes, len(want))
	}

	dec := fixedpsnr.NewDecoder()
	g, info, err := dec.DecodeFrom(ctx, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != f.Name {
		t.Fatalf("header name %q", info.Name)
	}
	h, _, err := dec.Decode(ctx, want)
	if err != nil {
		t.Fatal(err)
	}
	for i := range g.Data {
		if g.Data[i] != h.Data[i] {
			t.Fatalf("DecodeFrom and Decode disagree at %d", i)
		}
	}
	if d := fixedpsnr.CompareFields(f, g); math.Abs(d.PSNR-80) > 1 {
		t.Fatalf("round-trip PSNR %g", d.PSNR)
	}
}

// A context cancelled before Encode starts must surface ctx.Err()
// without compressing anything.
func TestEncoderPreCancelledContext(t *testing.T) {
	f := waveField("precancel", 64, 64)
	enc := mustEncoder(t, sessionOpts()...)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := enc.Encode(ctx, f); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	dec := fixedpsnr.NewDecoder()
	if _, _, err := dec.Decode(ctx, []byte("x")); !errors.Is(err, context.Canceled) {
		t.Fatalf("decode err = %v, want context.Canceled", err)
	}
}

// countdownCtx reports Canceled after a fixed number of Err checks — a
// deterministic stand-in for "the caller cancelled mid-compression". The
// compression loop polls Err between slabs, so the abort must land
// within one slab of work.
type countdownCtx struct {
	context.Context
	mu   sync.Mutex
	left int
}

func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.left <= 0 {
		return context.Canceled
	}
	c.left--
	return nil
}

func TestEncoderCancellationMidCompression(t *testing.T) {
	f := waveField("midcancel", 64, 64)
	// ChunkRows 2 → 32 independent slabs; the countdown trips well
	// before they are through.
	enc := mustEncoder(t,
		fixedpsnr.WithMode(fixedpsnr.ModePSNR),
		fixedpsnr.WithTargetPSNR(80),
		fixedpsnr.WithWorkers(1),
		fixedpsnr.WithChunkRows(2),
	)
	ctx := &countdownCtx{Context: context.Background(), left: 4}
	_, _, err := enc.Encode(ctx, f)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The session must stay usable after a cancelled call.
	if _, _, err := enc.Encode(context.Background(), f); err != nil {
		t.Fatalf("post-cancel encode: %v", err)
	}
}

// One Encoder shared by many goroutines must round-trip correctly; run
// under -race this is the concurrency-safety check for the scratch pools.
func TestEncoderConcurrentReuse(t *testing.T) {
	enc := mustEncoder(t, sessionOpts()...)
	dec := fixedpsnr.NewDecoder()
	ctx := context.Background()
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			f := waveField("conc", 50+g, 60)
			for iter := 0; iter < 3; iter++ {
				blob, _, err := enc.Encode(ctx, f)
				if err != nil {
					errs <- err
					return
				}
				recon, _, err := dec.Decode(ctx, blob)
				if err != nil {
					errs <- err
					return
				}
				if d := fixedpsnr.CompareFields(f, recon); math.Abs(d.PSNR-80) > 1 {
					errs <- errors.New("concurrent round-trip missed target")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// Steady-state Encoder reuse must allocate measurably less than the
// one-shot path — the point of the scratch pools.
func TestEncoderReuseAllocatesLess(t *testing.T) {
	f := waveField("allocs", 200, 250)
	opt := fixedpsnr.Options{Mode: fixedpsnr.ModePSNR, TargetPSNR: 80, Workers: 1}
	ctx := context.Background()
	enc := mustEncoder(t, fixedpsnr.WithOptions(opt))
	for i := 0; i < 3; i++ { // warm the pools
		if _, _, err := enc.Encode(ctx, f); err != nil {
			t.Fatal(err)
		}
	}
	oneShot := testing.AllocsPerRun(10, func() {
		if _, _, err := fixedpsnr.Compress(f, opt); err != nil {
			t.Fatal(err)
		}
	})
	reused := testing.AllocsPerRun(10, func() {
		if _, _, err := enc.Encode(ctx, f); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("allocs/op: one-shot %.0f, reused encoder %.0f", oneShot, reused)
	// Demand a real margin, not a tie: steady-state reuse currently runs
	// at under half the one-shot allocation count.
	if reused >= 0.8*oneShot {
		t.Fatalf("reused encoder allocates %.0f/op vs one-shot %.0f/op: pooling regressed", reused, oneShot)
	}
}

// Pin the absolute warm-Encoder allocation count, not just the margin
// over one-shot: the scratch pools (including the internal DEFLATE
// encoder) hold every large transient, so a warm encode should cost a
// small fixed number of allocations — the returned stream, the chunk
// table, and per-chunk payload copies. A creeping count here means a
// pool stopped being used on the hot path.
func TestEncoderWarmAllocsPinned(t *testing.T) {
	f := waveField("allocs-pin", 200, 250)
	enc := mustEncoder(t,
		fixedpsnr.WithMode(fixedpsnr.ModePSNR),
		fixedpsnr.WithTargetPSNR(80),
		fixedpsnr.WithWorkers(1),
	)
	ctx := context.Background()
	for i := 0; i < 3; i++ { // warm the pools
		if _, _, err := enc.Encode(ctx, f); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, _, err := enc.Encode(ctx, f); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("warm encoder: %.0f allocs/op", allocs)
	const maxAllocs = 40
	if allocs > maxAllocs {
		t.Fatalf("warm encoder allocates %.0f/op, want <= %d", allocs, maxAllocs)
	}
}

func TestEncodeBatch(t *testing.T) {
	fields := []*fixedpsnr.Field{
		waveField("U", 40, 50),
		waveField("V", 30, 60),
		waveField("W", 25, 25),
	}
	enc := mustEncoder(t,
		fixedpsnr.WithMode(fixedpsnr.ModePSNR),
		fixedpsnr.WithTargetPSNR(75),
	)
	ctx := context.Background()
	streams, results, err := enc.EncodeBatch(ctx, fields)
	if err != nil {
		t.Fatal(err)
	}
	if len(streams) != len(fields) || len(results) != len(fields) {
		t.Fatalf("got %d streams, %d results", len(streams), len(results))
	}
	dec := fixedpsnr.NewDecoder()
	for i, f := range fields {
		g, info, err := dec.Decode(ctx, streams[i])
		if err != nil {
			t.Fatalf("field %d: %v", i, err)
		}
		if info.Name != f.Name {
			t.Fatalf("field %d decoded as %q", i, info.Name)
		}
		if d := fixedpsnr.CompareFields(f, g); math.Abs(d.PSNR-75) > 1 {
			t.Fatalf("field %q PSNR %g", f.Name, d.PSNR)
		}
		if results[i].NPoints != f.Len() {
			t.Fatalf("field %q result NPoints %d", f.Name, results[i].NPoints)
		}
	}

	if _, _, err := enc.EncodeBatch(ctx, nil); err == nil {
		t.Fatal("empty batch should error")
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, _, err := enc.EncodeBatch(cancelled, fields); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch err = %v", err)
	}

	// A bad field surfaces a first-error with the field's name.
	bad := fixedpsnr.NewField("good", fixedpsnr.Float64, 4)
	bad.Dims[0] = 7 // corrupt shape
	if _, _, err := enc.EncodeBatch(ctx, []*fixedpsnr.Field{waveField("ok", 8, 8), bad}); err == nil {
		t.Fatal("batch with invalid field should error")
	}
}

func TestOptionsValidate(t *testing.T) {
	valid := []fixedpsnr.Options{
		{Mode: fixedpsnr.ModeAbs, ErrorBound: 1e-3},
		{Mode: fixedpsnr.ModeAbs}, // constant-field case resolves at plan time
		{Mode: fixedpsnr.ModeRel, RelBound: 1e-4},
		{Mode: fixedpsnr.ModePSNR, TargetPSNR: 80},
		{Mode: fixedpsnr.ModePWRel, PWRelBound: 0.01},
		{Mode: fixedpsnr.ModePSNR, TargetPSNR: 60, Capacity: 1024, BlockSize: 16, Level: 6},
	}
	for i, opt := range valid {
		if err := opt.Validate(); err != nil {
			t.Fatalf("valid case %d rejected: %v", i, err)
		}
	}
	invalid := []fixedpsnr.Options{
		{Mode: fixedpsnr.ModeAbs, ErrorBound: -1},
		{Mode: fixedpsnr.ModeAbs, ErrorBound: math.NaN()},
		{Mode: fixedpsnr.ModeAbs, ErrorBound: math.Inf(1)},
		{Mode: fixedpsnr.ModeRel},
		{Mode: fixedpsnr.ModeRel, RelBound: math.Inf(1)},
		{Mode: fixedpsnr.ModePSNR},
		{Mode: fixedpsnr.ModePSNR, TargetPSNR: -3},
		{Mode: fixedpsnr.ModePSNR, TargetPSNR: math.NaN()},
		{Mode: fixedpsnr.ModePWRel},
		{Mode: fixedpsnr.ModePWRel, PWRelBound: 2},
		{Mode: fixedpsnr.ModePWRel, PWRelBound: 0.1, Compressor: fixedpsnr.CompressorTransform},
		{Mode: fixedpsnr.Mode(42), ErrorBound: 1},
		{Mode: fixedpsnr.ModeAbs, ErrorBound: 1, Compressor: fixedpsnr.Compressor(9)},
		{Mode: fixedpsnr.ModeAbs, ErrorBound: 1, Capacity: -1},
		{Mode: fixedpsnr.ModeAbs, ErrorBound: 1, Capacity: 7},
		{Mode: fixedpsnr.ModeAbs, ErrorBound: 1, Capacity: 1 << 21},
		{Mode: fixedpsnr.ModeAbs, ErrorBound: 1, BlockSize: -4},
		{Mode: fixedpsnr.ModeAbs, ErrorBound: 1, BlockSize: 1 << 21},
		{Mode: fixedpsnr.ModeAbs, ErrorBound: 1, Level: 42},
	}
	for i, opt := range invalid {
		err := opt.Validate()
		if err == nil {
			t.Fatalf("invalid case %d accepted: %+v", i, opt)
		}
		if !strings.HasPrefix(err.Error(), "fixedpsnr:") {
			t.Fatalf("invalid case %d: error %q lacks fixedpsnr prefix", i, err)
		}
	}

	// Both API paths reject the same bad options.
	if _, err := fixedpsnr.NewEncoder(fixedpsnr.WithMode(fixedpsnr.ModePSNR), fixedpsnr.WithTargetPSNR(-1)); err == nil {
		t.Fatal("NewEncoder accepted a negative PSNR target")
	}
	f := waveField("v", 16, 16)
	if _, _, err := fixedpsnr.Compress(f, fixedpsnr.Options{Mode: fixedpsnr.ModeAbs, ErrorBound: 1, Level: 42}); err == nil {
		t.Fatal("Compress accepted an absurd DEFLATE level")
	}
}

// The unknown-codec selector errors at compress time with a clear
// message (the name cannot be checked at Validate time: registration may
// legitimately happen later).
func TestCodecNameSelector(t *testing.T) {
	f := waveField("byname", 32, 32)
	enc := mustEncoder(t,
		fixedpsnr.WithMode(fixedpsnr.ModePSNR),
		fixedpsnr.WithTargetPSNR(70),
		fixedpsnr.WithCodecName("otc"),
	)
	blob, _, err := enc.Encode(context.Background(), f)
	if err != nil {
		t.Fatal(err)
	}
	if _, info, err := fixedpsnr.Decompress(blob); err != nil || info.Codec.String() != "otc-dct" {
		t.Fatalf("codec = %v, err = %v", info, err)
	}
	enc = mustEncoder(t,
		fixedpsnr.WithMode(fixedpsnr.ModePSNR),
		fixedpsnr.WithTargetPSNR(70),
		fixedpsnr.WithCodecName("no-such-codec"),
	)
	if _, _, err := enc.Encode(context.Background(), f); err == nil || !strings.Contains(err.Error(), "not registered") {
		t.Fatalf("err = %v, want not-registered", err)
	}
}
