package fixedpsnr_test

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"fixedpsnr"
	"fixedpsnr/datasets"
)

// entropyField builds a deterministic field whose compressibility is set
// by the amplitude of a pseudorandom component on top of smooth
// structure: noise 0 is highly compressible, noise ~0.5 approaches
// incompressible.
func entropyField(name string, noise float64, seed int64, dims ...int) *fixedpsnr.Field {
	f := fixedpsnr.NewField(name, fixedpsnr.Float32, dims...)
	rng := rand.New(rand.NewSource(seed))
	for i := range f.Data {
		x := float64(i)
		v := math.Sin(x/17)*math.Cos(x/23) + 0.5*math.Sin(x/11) + noise*(rng.Float64()-0.5)
		f.Data[i] = float64(float32(v))
	}
	return f
}

// TestFixedRatioLandsWithinToleranceAcrossEntropy is the solver
// convergence property test: across synthetic fields of varying entropy
// and both built-in codecs, ModeRatio must land the achieved compression
// ratio within the acceptance band of every achievable target.
func TestFixedRatioLandsWithinToleranceAcrossEntropy(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-pass compression sweep")
	}
	cases := []struct {
		noise   float64
		targets []float64
	}{
		{0, []float64{8, 24, 64}},    // smooth: deep ratios reachable
		{0.05, []float64{6, 16, 32}}, // mild texture
		{0.4, []float64{3, 6}},       // rough: only shallow ratios achievable
	}
	const tol = 0.10 // the acceptance band the PR must meet
	for _, comp := range []fixedpsnr.Compressor{fixedpsnr.CompressorSZ, fixedpsnr.CompressorTransform} {
		for ci, c := range cases {
			f := entropyField("entropy", c.noise, int64(ci+1), 48, 64, 64)
			for _, target := range c.targets {
				blob, res, err := fixedpsnr.Compress(f, fixedpsnr.Options{
					Mode:        fixedpsnr.ModeRatio,
					TargetRatio: target,
					Compressor:  comp,
				})
				if err != nil {
					t.Fatalf("%v noise=%g R=%g: %v", comp, c.noise, target, err)
				}
				dev := math.Abs(res.Ratio-target) / target
				if dev > tol {
					t.Errorf("%v noise=%g R=%g: achieved %.3f (%.1f%% off, %d passes)",
						comp, c.noise, target, res.Ratio, 100*dev, res.Passes)
				}
				if res.TargetRatio != target {
					t.Errorf("Result.TargetRatio = %g, want %g", res.TargetRatio, target)
				}
				if res.Passes < 1 || res.Passes > 9 {
					t.Errorf("%v noise=%g R=%g: implausible pass count %d", comp, c.noise, target, res.Passes)
				}
				// The stream must still decompress and identify as ratio-mode.
				g, info, err := fixedpsnr.Decompress(blob)
				if err != nil {
					t.Fatalf("decompress: %v", err)
				}
				if info.Mode.String() != "ratio" {
					t.Errorf("stream mode = %v, want ratio", info.Mode)
				}
				if !f.SameShape(g) {
					t.Fatalf("shape mismatch after round trip")
				}
			}
		}
	}
}

// TestFixedRatioChunkedStreamsSteerGlobally: ratio steering must work on
// chunked streams too, recompressing every chunk (no exact-chunk pinning)
// and keeping the chunk table consistent.
func TestFixedRatioChunkedStreams(t *testing.T) {
	f := entropyField("chunked", 0.05, 3, 64, 64, 64)
	blob, res, err := fixedpsnr.Compress(f, fixedpsnr.Options{
		Mode:        fixedpsnr.ModeRatio,
		TargetRatio: 16,
		ChunkPoints: fixedpsnr.MinChunkPoints,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dev := math.Abs(res.Ratio-16) / 16; dev > 0.10 {
		t.Fatalf("chunked fixed-ratio achieved %.3f (%.1f%% off)", res.Ratio, 100*dev)
	}
	info, err := fixedpsnr.Inspect(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Chunks) < 2 {
		t.Fatalf("expected a multi-chunk stream, got %d chunks", len(info.Chunks))
	}
	// Region decode still works on the steered stream.
	region, _, err := fixedpsnr.DecompressRegion(blob, []int{8, 0, 0}, []int{4, 64, 64})
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := fixedpsnr.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range region.Data {
		row := 8 + i/(64*64)
		if v != full.Data[row*64*64+i%(64*64)] {
			t.Fatalf("region decode diverges from full decode at %d", i)
		}
	}
}

// TestToleranceAndPassKnobs: the exposed tuning options must actually
// steer the loop — a wide ToleranceDB accepts the first pass, a tight one
// spends refinement passes.
func TestToleranceAndPassKnobs(t *testing.T) {
	// The Hurricane QVAPOR field concentrates prediction errors in the
	// center bin, which is exactly the low-target overshoot the
	// calibration exists for — its 30 dB first pass measurably lands
	// outside ±0.5 dB (≈ +2 dB overshoot).
	hur := datasets.Hurricane([]int{10, 48, 48})
	f, err := hur.FieldByName("QVAPOR", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Low target PSNR overshoots on the first pass (the Table II rows) —
	// with a huge tolerance the first pass must be accepted.
	_, wide, err := fixedpsnr.Compress(f, fixedpsnr.Options{
		Mode: fixedpsnr.ModePSNR, TargetPSNR: 30, Calibrated: true, ToleranceDB: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if wide.Passes != 1 {
		t.Fatalf("ToleranceDB=40 must accept the first pass, took %d", wide.Passes)
	}
	_, tight, err := fixedpsnr.Compress(f, fixedpsnr.Options{
		Mode: fixedpsnr.ModePSNR, TargetPSNR: 30, Calibrated: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Passes <= 1 {
		t.Fatalf("default tolerance at a low target should refine, took %d pass(es)", tight.Passes)
	}
	if math.Abs(tight.MeasuredPSNR-30) > 0.5 {
		t.Fatalf("calibrated 30 dB landed at %.2f dB", tight.MeasuredPSNR)
	}
	// MaxRefinePasses caps the loop.
	_, capped, err := fixedpsnr.Compress(f, fixedpsnr.Options{
		Mode: fixedpsnr.ModeRatio, TargetRatio: 40, MaxRefinePasses: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if capped.Passes > 2 {
		t.Fatalf("MaxRefinePasses=1 allows at most 2 passes, took %d", capped.Passes)
	}
}

// TestRatioOptionValidation: the new knobs reject nonsense through
// Options.Validate on every entry point.
func TestRatioOptionValidation(t *testing.T) {
	bad := []fixedpsnr.Options{
		{Mode: fixedpsnr.ModeRatio},                                          // missing target
		{Mode: fixedpsnr.ModeRatio, TargetRatio: 1},                          // not > 1
		{Mode: fixedpsnr.ModeRatio, TargetRatio: 0.5},                        // compression must shrink
		{Mode: fixedpsnr.ModeRatio, TargetRatio: math.Inf(1)},                // infinite
		{Mode: fixedpsnr.ModeRatio, TargetRatio: 16, RatioTolerance: -0.1},   // negative band
		{Mode: fixedpsnr.ModeRatio, TargetRatio: 16, RatioTolerance: 1},      // band >= 1
		{Mode: fixedpsnr.ModeRatio, TargetRatio: 16, MaxRefinePasses: -1},    // negative passes
		{Mode: fixedpsnr.ModeRatio, TargetRatio: 16, MaxRefinePasses: 65},    // absurd passes
		{Mode: fixedpsnr.ModePSNR, TargetPSNR: 60, ToleranceDB: -1},          // negative band
		{Mode: fixedpsnr.ModePSNR, TargetPSNR: 60, ToleranceDB: math.NaN()},  // NaN band
		{Mode: fixedpsnr.ModePSNR, TargetPSNR: 60, ToleranceDB: math.Inf(1)}, // infinite band
	}
	for _, opt := range bad {
		if err := opt.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted nonsense", opt)
		} else if !strings.HasPrefix(err.Error(), "fixedpsnr:") {
			t.Errorf("Validate(%+v) error %q lacks the fixedpsnr prefix", opt, err)
		}
		if _, err := fixedpsnr.NewEncoder(fixedpsnr.WithOptions(opt)); err == nil {
			t.Errorf("NewEncoder accepted %+v", opt)
		}
	}
	good := fixedpsnr.Options{
		Mode: fixedpsnr.ModeRatio, TargetRatio: 16,
		RatioTolerance: 0.02, MaxRefinePasses: 12, ToleranceDB: 1,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("Validate rejected a sound configuration: %v", err)
	}
}

// TestEncodeFromRejectsRatioMode: streaming encodes are single-pass by
// construction, so the multi-pass ratio target must be refused loudly.
func TestEncodeFromRejectsRatioMode(t *testing.T) {
	enc, err := fixedpsnr.NewEncoder(
		fixedpsnr.WithMode(fixedpsnr.ModeRatio),
		fixedpsnr.WithTargetRatio(16),
	)
	if err != nil {
		t.Fatal(err)
	}
	f := entropyField("stream", 0, 9, 16, 32, 32)
	_, _, err = enc.EncodeFrom(context.Background(), fixedpsnr.NewFieldReader(f))
	if err == nil || !strings.Contains(err.Error(), "ModeRatio") {
		t.Fatalf("EncodeFrom must reject ModeRatio, got %v", err)
	}
}

// TestRatioSessionOptions: the functional options thread the new knobs.
func TestRatioSessionOptions(t *testing.T) {
	enc, err := fixedpsnr.NewEncoder(
		fixedpsnr.WithMode(fixedpsnr.ModeRatio),
		fixedpsnr.WithTargetRatio(12),
		fixedpsnr.WithRatioTolerance(0.08),
		fixedpsnr.WithMaxRefinePasses(5),
		fixedpsnr.WithToleranceDB(0.7),
	)
	if err != nil {
		t.Fatal(err)
	}
	opt := enc.Options()
	if opt.TargetRatio != 12 || opt.RatioTolerance != 0.08 || opt.MaxRefinePasses != 5 || opt.ToleranceDB != 0.7 {
		t.Fatalf("options not threaded: %+v", opt)
	}
	f := entropyField("session", 0.02, 11, 24, 48, 48)
	blob, res, err := enc.Encode(context.Background(), f)
	if err != nil {
		t.Fatal(err)
	}
	if dev := math.Abs(res.Ratio-12) / 12; dev > 0.08 {
		t.Fatalf("session ratio encode achieved %.3f (%.1f%% off)", res.Ratio, 100*dev)
	}
	if _, _, err := fixedpsnr.NewDecoder().Decode(context.Background(), blob); err != nil {
		t.Fatal(err)
	}
}

// TestPassesReportedOnSinglePassModes: every mode reports at least one
// pass so dashboards can rely on the field.
func TestPassesReportedOnSinglePassModes(t *testing.T) {
	f := entropyField("single", 0.02, 13, 16, 32, 32)
	for _, opt := range []fixedpsnr.Options{
		{Mode: fixedpsnr.ModeAbs, ErrorBound: 1e-3},
		{Mode: fixedpsnr.ModeRel, RelBound: 1e-4},
		{Mode: fixedpsnr.ModePSNR, TargetPSNR: 70},
		{Mode: fixedpsnr.ModePWRel, PWRelBound: 1e-3},
	} {
		_, res, err := fixedpsnr.Compress(f, opt)
		if err != nil {
			t.Fatalf("%v: %v", opt.Mode, err)
		}
		if res.Passes != 1 {
			t.Errorf("%v: Passes = %d, want 1", opt.Mode, res.Passes)
		}
	}
}
