// Package codec is the public extension point of the fixedpsnr
// compression stack: third-party pipelines implement the Codec interface
// and call Register, and from that moment every consumer of the module —
// fixedpsnr.Decompress, Encoder/Decoder sessions, archives, and the fpsz
// CLI — can decode their streams, routed by the codec byte recorded in
// each stream header. Compression with a registered pipeline is selected
// by name via fixedpsnr.Options.Codec or fixedpsnr.WithCodecName.
//
// The types here are aliases of the internal registry layer, so a codec
// written against this package is exactly a codec written inside the
// module:
//
//	type myCodec struct{}
//
//	func (myCodec) Name() string      { return "my" }
//	func (myCodec) IDs() []codec.ID   { return []codec.ID{42} }
//	func (myCodec) MeasuresMSE() bool { return false }
//	func (myCodec) Compress(ctx context.Context, f *codec.Field, opt codec.Options, sc *codec.Scratch) ([]byte, *codec.Stats, error) { ... }
//	func (myCodec) Decompress(data []byte) (*codec.Field, *codec.Header, error) { ... }
//
//	func init() { codec.Register(myCodec{}) }
//
// Emit streams with codec.Header{Codec: 42, ...}.Marshal() followed by
// your payload; pick a stream ID that no registered codec claims
// (Register panics on collisions at init time, so clashes cannot ship).
package codec

import (
	icodec "fixedpsnr/internal/codec"
	"fixedpsnr/internal/field"
)

// Aliases of the shared container and registry types (see the internal
// codec package for full documentation).
type (
	// Codec is one compression pipeline behind the registry.
	Codec = icodec.Codec
	// ChunkCodec is the optional interface of pipelines that compress
	// and decompress one row-slab chunk at a time, unlocking streaming
	// encodes, region decodes, and selective recompression.
	ChunkCodec = icodec.ChunkCodec
	// ChunkInfo is one entry of a chunked stream's per-chunk index.
	ChunkInfo = icodec.ChunkInfo
	// ChunkStats is the per-chunk outcome a ChunkCodec reports.
	ChunkStats = icodec.ChunkStats
	// ID is the stream codec byte recorded in every header.
	ID = icodec.ID
	// Header is the self-describing stream header.
	Header = icodec.Header
	// Options is the unified per-codec configuration.
	Options = icodec.Options
	// Stats is the unified compression outcome report.
	Stats = icodec.Stats
	// Scratch holds pooled scratch buffers threaded through session
	// compressions; a nil *Scratch is always valid.
	Scratch = icodec.Scratch
	// Mode is the error-control mode byte annotated in headers.
	Mode = icodec.Mode
	// Transform selects the orthonormal block transform.
	Transform = icodec.Transform
	// Field is the N-dimensional data container codecs consume and
	// produce (same type as fixedpsnr.Field).
	Field = field.Field
	// Precision tags the storage precision of field values.
	Precision = field.Precision
)

// Precision values.
const (
	Float32 = field.Float32
	Float64 = field.Float64
)

// Register publishes a pipeline under its Name and stream IDs. It panics
// if the name or any ID is already taken — call it from init() so
// collisions fail fast at program start.
func Register(c Codec) { icodec.Register(c) }

// Names lists the registered pipelines, sorted.
func Names() []string { return icodec.Names() }

// ByName finds a registered pipeline by its registry name.
func ByName(name string) (Codec, bool) { return icodec.ByName(name) }

// Lookup finds the pipeline that decodes streams with the given codec
// byte.
func Lookup(id ID) (Codec, bool) { return icodec.Lookup(id) }

// Decompress reconstructs a field from any registered stream, routing by
// the codec byte in its header.
func Decompress(data []byte) (*Field, *Header, error) { return icodec.Decompress(data) }

// ParseHeader decodes a stream header without touching the payload.
func ParseHeader(data []byte) (*Header, error) { return icodec.ParseHeader(data) }

// NewField allocates a zero-filled field, for Decompress implementations
// building their output.
func NewField(name string, prec Precision, dims ...int) *Field {
	return field.New(name, prec, dims...)
}
