package fixedpsnr_test

import (
	"context"
	"math"
	"strings"
	"testing"

	"fixedpsnr"
)

// roiField builds a field with a hot structured band in the middle rows
// (the region of interest) over a noisier background, with enough
// entropy everywhere that a fixed-ratio background target has room to
// steer.
func roiField(name string, dims ...int) *fixedpsnr.Field {
	f := fixedpsnr.NewField(name, fixedpsnr.Float32, dims...)
	inner := 1
	for _, d := range dims[1:] {
		inner *= d
	}
	for i := range f.Data {
		r, c := i/inner, i%inner
		v := math.Sin(0.2*float64(r))*math.Cos(0.13*float64(c)) +
			0.4*math.Sin(0.019*float64(r*c%997)) +
			0.2*math.Cos(0.53*float64(i%389))
		f.Data[i] = float64(float32(v))
	}
	return f
}

// fieldValueRange returns max-min of the field's data.
func fieldValueRange(f *fixedpsnr.Field) float64 {
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range f.Data {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return max - min
}

// TestMixedTargetRoundTrip is the acceptance test of the per-region
// steering stack: one field whose middle rows are held at PSNR >= 80 dB
// while the background is steered to an 8:1 fixed ratio. The stream must
// decode correctly, both groups' achieved statistics must land inside
// their acceptance bands, and the container must carry the group table.
func TestMixedTargetRoundTrip(t *testing.T) {
	f := roiField("mixed", 64, 64, 16) // inner = 1024 points/row
	vr := fieldValueRange(f)
	roi := fixedpsnr.RegionTarget{
		Region:     fixedpsnr.Region{Off: []int{16, 0, 0}, Ext: []int{16, 64, 16}},
		Mode:       fixedpsnr.ModePSNR,
		TargetPSNR: 80,
	}
	opt := fixedpsnr.Options{
		Mode:          fixedpsnr.ModeRatio,
		TargetRatio:   8,
		RegionTargets: []fixedpsnr.RegionTarget{roi},
		ChunkPoints:   fixedpsnr.MinChunkPoints, // 16 rows per chunk: ROI = exactly one chunk
		Workers:       2,
	}
	blob, res, err := fixedpsnr.Compress(f, opt)
	if err != nil {
		t.Fatal(err)
	}

	if len(res.Regions) != 2 {
		t.Fatalf("Regions = %d groups, want roi0 + background", len(res.Regions))
	}
	roiRes, bg := res.Regions[0], res.Regions[1]
	if roiRes.Name != "roi0" || bg.Name != fixedpsnr.BackgroundGroup {
		t.Fatalf("group names = %q, %q", roiRes.Name, bg.Name)
	}
	if roiRes.Passes < 1 || bg.Passes < 1 || res.Passes < bg.Passes {
		t.Fatalf("pass accounting: roi %d, background %d, field %d", roiRes.Passes, bg.Passes, res.Passes)
	}

	// Per-group achieved stats must land inside their bands: the ROI
	// within the default ±0.5 dB of 80, the background within ±5% of 8.
	if math.Abs(roiRes.AchievedPSNR-80) > 0.5 {
		t.Fatalf("ROI achieved %.3f dB, want 80 ±0.5", roiRes.AchievedPSNR)
	}
	if dev := math.Abs(bg.AchievedRatio-8) / 8; dev > 0.05 {
		t.Fatalf("background achieved ratio %.3f (%.1f%% off), want 8 ±5%%", bg.AchievedRatio, 100*dev)
	}
	if roiRes.Mode != fixedpsnr.ModePSNR || bg.Mode != fixedpsnr.ModeRatio {
		t.Fatalf("group modes = %v, %v", roiRes.Mode, bg.Mode)
	}
	if roiRes.Chunks != 1 || bg.Chunks != 3 {
		t.Fatalf("group chunks = %d, %d, want 1, 3", roiRes.Chunks, bg.Chunks)
	}

	// The stream is a version-4 grouped container with per-chunk group
	// IDs and the group table describing both targets.
	h, err := fixedpsnr.Inspect(blob)
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != 4 {
		t.Fatalf("stream version = %d, want 4", h.Version)
	}
	if len(h.Groups) != 2 || h.Groups[0].Name != "roi0" || h.Groups[1].Name != fixedpsnr.BackgroundGroup {
		t.Fatalf("group table = %+v", h.Groups)
	}
	if h.Groups[0].TargetPSNR != 80 || h.Groups[1].TargetRatio != 8 {
		t.Fatalf("group targets = %+v", h.Groups)
	}
	for ci, c := range h.Chunks {
		wantGroup := 1
		if c.RowStart >= 16 && c.RowStart < 32 {
			wantGroup = 0
		}
		if c.Group != wantGroup {
			t.Fatalf("chunk %d (rows %d+%d) group = %d, want %d", ci, c.RowStart, c.Rows, c.Group, wantGroup)
		}
		if c.EbAbs <= 0 {
			t.Fatalf("chunk %d has no explicit bound", ci)
		}
	}
	// The ROI's bound must be materially tighter than the background's.
	if !(h.Chunks[1].EbAbs < h.Chunks[0].EbAbs/4) {
		t.Fatalf("ROI bound %g not tighter than background %g", h.Chunks[1].EbAbs, h.Chunks[0].EbAbs)
	}

	// Decode correctness: the full reconstruction must honor each
	// group's bound per point, and the decoded ROI must actually hit the
	// high PSNR (measured against the field's global value range, the
	// target's normalization).
	g, _, err := fixedpsnr.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	inner := 64 * 16
	var roiSumSq float64
	for i := 16 * inner; i < 32*inner; i++ {
		d := f.Data[i] - g.Data[i]
		roiSumSq += d * d
	}
	roiPSNR := -10*math.Log10(roiSumSq/float64(16*inner)) + 20*math.Log10(vr)
	if math.Abs(roiPSNR-80) > 0.5 {
		t.Fatalf("decoded ROI PSNR %.3f dB, want 80 ±0.5", roiPSNR)
	}
	if math.Abs(roiPSNR-roiRes.AchievedPSNR) > 1e-6 {
		t.Fatalf("reported ROI PSNR %.6f differs from decoded %.6f", roiRes.AchievedPSNR, roiPSNR)
	}

	// Region decode of the ROI stays byte-identical to slicing the full
	// reconstruction — grouped streams keep chunk-granular access.
	sub, _, err := fixedpsnr.NewDecoder().DecodeRegion(context.Background(), blob,
		[]int{16, 0, 0}, []int{16, 64, 16})
	if err != nil {
		t.Fatal(err)
	}
	want, err := g.Slice([]int{16, 0, 0}, []int{16, 64, 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sub.Data {
		if sub.Data[i] != want.Data[i] {
			t.Fatalf("DecodeRegion differs from full decode at %d", i)
		}
	}

	// Round-trip the grouped header through re-marshaling: parse →
	// marshal → parse must preserve the group table and chunk groups.
	re, err := fixedpsnr.Inspect(append(h.Marshal(), blob[h.PayloadOffset():]...))
	if err != nil {
		t.Fatalf("re-marshaled grouped header: %v", err)
	}
	if len(re.Groups) != 2 || re.Groups[0].Name != "roi0" {
		t.Fatalf("re-marshaled groups = %+v", re.Groups)
	}
}

// TestRegionTargetValidation exercises the request-level and field-level
// rejection paths: bad modes and targets at Validate time, bad geometry
// and overlap at encode time.
func TestRegionTargetValidation(t *testing.T) {
	region := func(off, ext []int) fixedpsnr.Region { return fixedpsnr.Region{Off: off, Ext: ext} }
	base := fixedpsnr.Options{Mode: fixedpsnr.ModePSNR, TargetPSNR: 60, Calibrated: true}

	bad := []struct {
		name string
		rt   fixedpsnr.RegionTarget
	}{
		{"mode abs", fixedpsnr.RegionTarget{Region: region([]int{0, 0}, []int{4, 4}), Mode: fixedpsnr.ModeAbs}},
		{"psnr zero", fixedpsnr.RegionTarget{Region: region([]int{0, 0}, []int{4, 4}), Mode: fixedpsnr.ModePSNR}},
		{"psnr inf", fixedpsnr.RegionTarget{Region: region([]int{0, 0}, []int{4, 4}), Mode: fixedpsnr.ModePSNR, TargetPSNR: math.Inf(1)}},
		{"ratio 1", fixedpsnr.RegionTarget{Region: region([]int{0, 0}, []int{4, 4}), Mode: fixedpsnr.ModeRatio, TargetRatio: 1}},
		{"ratio below 1", fixedpsnr.RegionTarget{Region: region([]int{0, 0}, []int{4, 4}), Mode: fixedpsnr.ModeRatio, TargetRatio: 0.25}},
		{"reserved name", fixedpsnr.RegionTarget{Name: fixedpsnr.BackgroundGroup, Region: region([]int{0, 0}, []int{4, 4}), Mode: fixedpsnr.ModePSNR, TargetPSNR: 70}},
	}
	f := roiField("val", 64, 32, 32)
	for _, tc := range bad {
		opt := base
		opt.RegionTargets = []fixedpsnr.RegionTarget{tc.rt}
		if _, _, err := fixedpsnr.Compress(f, opt); err == nil {
			t.Errorf("%s: accepted %+v", tc.name, tc.rt)
		}
	}

	// PWRel cannot group-steer.
	pw := fixedpsnr.Options{Mode: fixedpsnr.ModePWRel, PWRelBound: 1e-3,
		RegionTargets: []fixedpsnr.RegionTarget{{Region: region([]int{0, 0, 0}, []int{4, 32, 32}), Mode: fixedpsnr.ModePSNR, TargetPSNR: 70}}}
	if err := pw.Validate(); err == nil || !strings.Contains(err.Error(), "ModePWRel") {
		t.Errorf("PWRel + regions: err = %v", err)
	}

	// Geometry against the concrete field: out of bounds, wrong rank,
	// zero extent, overlapping row windows, duplicate names.
	for name, rts := range map[string][]fixedpsnr.RegionTarget{
		"out of bounds": {{Region: region([]int{60, 0, 0}, []int{8, 32, 32}), Mode: fixedpsnr.ModePSNR, TargetPSNR: 70}},
		"wrong rank":    {{Region: region([]int{0}, []int{8}), Mode: fixedpsnr.ModePSNR, TargetPSNR: 70}},
		"zero extent":   {{Region: region([]int{0, 0, 0}, []int{0, 32, 32}), Mode: fixedpsnr.ModePSNR, TargetPSNR: 70}},
		"overlap": {
			{Region: region([]int{0, 0, 0}, []int{16, 32, 32}), Mode: fixedpsnr.ModePSNR, TargetPSNR: 70},
			{Region: region([]int{8, 0, 0}, []int{16, 32, 32}), Mode: fixedpsnr.ModeRatio, TargetRatio: 8},
		},
		"duplicate names": {
			{Name: "a", Region: region([]int{0, 0, 0}, []int{8, 32, 32}), Mode: fixedpsnr.ModePSNR, TargetPSNR: 70},
			{Name: "a", Region: region([]int{32, 0, 0}, []int{8, 32, 32}), Mode: fixedpsnr.ModePSNR, TargetPSNR: 70},
		},
	} {
		opt := base
		opt.RegionTargets = rts
		if _, _, err := fixedpsnr.Compress(f, opt); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}

	// Two disjoint row windows that land inside one chunk must be
	// rejected at partition time, not silently merged.
	small := roiField("straddle", 64, 32, 32) // inner=1024, chunks of 16 rows
	opt := base
	opt.ChunkPoints = fixedpsnr.MinChunkPoints
	opt.RegionTargets = []fixedpsnr.RegionTarget{
		{Region: region([]int{0, 0, 0}, []int{4, 32, 32}), Mode: fixedpsnr.ModePSNR, TargetPSNR: 70},
		{Region: region([]int{8, 0, 0}, []int{4, 32, 32}), Mode: fixedpsnr.ModeRatio, TargetRatio: 8},
	}
	if _, _, err := fixedpsnr.Compress(small, opt); err == nil || !strings.Contains(err.Error(), "claimed by regions") {
		t.Errorf("chunk straddle: err = %v", err)
	}

	// EncodeFrom is single-pass and must reject region targets loudly.
	enc, err := fixedpsnr.NewEncoder(
		fixedpsnr.WithMode(fixedpsnr.ModePSNR), fixedpsnr.WithTargetPSNR(60),
		fixedpsnr.WithRegionTargets(fixedpsnr.RegionTarget{
			Region: region([]int{0, 0, 0}, []int{8, 32, 32}), Mode: fixedpsnr.ModePSNR, TargetPSNR: 80}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := enc.EncodeFrom(context.Background(), fixedpsnr.NewFieldReader(f)); err == nil ||
		!strings.Contains(err.Error(), "RegionTargets") {
		t.Errorf("EncodeFrom + regions: err = %v", err)
	}
}

// TestTargetRatioRejectedBeforeCompression: a target ratio at or below 1
// can never be achieved (compression must shrink), so Validate must
// reject it up front with an explanation — not let the solver burn
// MaxRefinePasses chasing it.
func TestTargetRatioRejectedBeforeCompression(t *testing.T) {
	for _, r := range []float64{1, 0.999, 0.5, 0, -3, math.Inf(1)} {
		err := fixedpsnr.Options{Mode: fixedpsnr.ModeRatio, TargetRatio: r}.Validate()
		if err == nil {
			t.Errorf("TargetRatio %g accepted", r)
			continue
		}
		if r > 0 && !math.IsInf(r, 0) && !strings.Contains(err.Error(), "never be achieved") {
			t.Errorf("TargetRatio %g: error %q does not explain why", r, err)
		}
		// The same floor applies to region ratio targets.
		err = fixedpsnr.Options{
			Mode: fixedpsnr.ModePSNR, TargetPSNR: 60,
			RegionTargets: []fixedpsnr.RegionTarget{{
				Region: fixedpsnr.Region{Off: []int{0, 0}, Ext: []int{4, 4}},
				Mode:   fixedpsnr.ModeRatio, TargetRatio: r,
			}},
		}.Validate()
		if err == nil {
			t.Errorf("region TargetRatio %g accepted", r)
		}
	}
}

// TestRegionTargetsOnConstantField: a constant field compresses to one
// exact header; region demands have nothing to steer and are ignored
// after validation.
func TestRegionTargetsOnConstantField(t *testing.T) {
	f := fixedpsnr.NewField("const", fixedpsnr.Float64, 32, 32)
	for i := range f.Data {
		f.Data[i] = 4.5
	}
	opt := fixedpsnr.Options{
		Mode: fixedpsnr.ModeAbs,
		RegionTargets: []fixedpsnr.RegionTarget{{
			Region: fixedpsnr.Region{Off: []int{0, 0}, Ext: []int{8, 32}},
			Mode:   fixedpsnr.ModePSNR, TargetPSNR: 80,
		}},
	}
	blob, res, err := fixedpsnr.Compress(f, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regions) != 0 {
		t.Fatalf("constant field reported %d region groups", len(res.Regions))
	}
	g, _, err := fixedpsnr.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	for i := range g.Data {
		if g.Data[i] != f.Data[i] {
			t.Fatal("constant field round trip")
		}
	}
	// Bad geometry is still rejected, even though the field is constant.
	opt.RegionTargets[0].Region.Off = []int{40, 0}
	if _, _, err := fixedpsnr.Compress(f, opt); err == nil {
		t.Fatal("constant field accepted an out-of-bounds region")
	}
}
