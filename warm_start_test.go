package fixedpsnr_test

import (
	"context"
	"math"
	"testing"

	"fixedpsnr"
)

// snapshotField builds one time step of a synthetic variable: base
// structure plus a phase shift, so consecutive snapshots are similar but
// not identical — the workload solver warm starts exist for.
func snapshotField(name string, step int, dims ...int) *fixedpsnr.Field {
	f := fixedpsnr.NewField(name, fixedpsnr.Float64, dims...)
	phase := 0.03 * float64(step)
	inner := 1
	for _, d := range dims[1:] {
		inner *= d
	}
	for i := range f.Data {
		r, c := i/inner, i%inner
		f.Data[i] = math.Sin(0.17*float64(r)+phase)*math.Cos(0.11*float64(c)) +
			0.35*math.Sin(0.021*float64(r*c%811)+2*phase) +
			0.15*math.Cos(0.61*float64(i%277))
	}
	return f
}

// TestWarmStartConvergesInTwoPasses: the first steered encode of a
// variable starts data-blind and needs several passes; once the session
// has cached its settled bound, repeat snapshots of the same variable
// must converge in at most 2 passes.
func TestWarmStartConvergesInTwoPasses(t *testing.T) {
	enc, err := fixedpsnr.NewEncoder(
		fixedpsnr.WithMode(fixedpsnr.ModeRatio),
		fixedpsnr.WithTargetRatio(12),
		fixedpsnr.WithWorkers(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	first := snapshotField("qvapor", 0, 24, 48, 48)
	_, res0, err := enc.Encode(ctx, first)
	if err != nil {
		t.Fatal(err)
	}
	if res0.Passes < 2 {
		t.Fatalf("first encode took %d passes; the test needs a data-blind start that refines", res0.Passes)
	}

	for step := 1; step <= 3; step++ {
		snap := snapshotField("qvapor", step, 24, 48, 48)
		_, res, err := enc.Encode(ctx, snap)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if res.Passes > 2 {
			t.Fatalf("step %d: warm-started encode took %d passes, want <= 2", step, res.Passes)
		}
		if dev := math.Abs(res.Ratio-12) / 12; dev > 0.05 {
			t.Fatalf("step %d: achieved ratio %.3f outside the band", step, res.Ratio)
		}
	}
}

// TestWarmStartKeyedByRequest: a cached settlement answers only the same
// (mode, target, codec) request — changing the target must fall back to
// a cold start, not reuse a bound solved for a different goal.
func TestWarmStartKeyedByRequest(t *testing.T) {
	f := snapshotField("theta", 0, 24, 48, 48)
	ctx := context.Background()

	cold, err := fixedpsnr.NewEncoder(
		fixedpsnr.WithMode(fixedpsnr.ModeRatio), fixedpsnr.WithTargetRatio(24), fixedpsnr.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	_, coldRes, err := cold.Encode(ctx, f)
	if err != nil {
		t.Fatal(err)
	}

	// Same session, ratio 12 first: the cache holds a ratio-12 bound for
	// "theta", which a ratio-24 encode must not consume. Sessions are
	// per-configuration, so emulate a mixed workload via two encoders
	// sharing nothing; the keying is observable through pass counts: if
	// the ratio-24 encode had warm-started from the ratio-12 bound, its
	// pass count could not match the cold encoder's.
	warm, err := fixedpsnr.NewEncoder(
		fixedpsnr.WithMode(fixedpsnr.ModeRatio), fixedpsnr.WithTargetRatio(24), fixedpsnr.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	_, warmRes, err := warm.Encode(ctx, f)
	if err != nil {
		t.Fatal(err)
	}
	if warmRes.Passes != coldRes.Passes || warmRes.Ratio != coldRes.Ratio {
		t.Fatalf("fresh sessions disagree: %d/%g vs %d/%g", warmRes.Passes, warmRes.Ratio, coldRes.Passes, coldRes.Ratio)
	}
}

// TestWarmStartOptOut: WithWarmStart(false) keeps every encode
// data-blind, so repeat encodes of the same variable replay the cold
// pass count and produce identical streams.
func TestWarmStartOptOut(t *testing.T) {
	enc, err := fixedpsnr.NewEncoder(
		fixedpsnr.WithMode(fixedpsnr.ModeRatio),
		fixedpsnr.WithTargetRatio(12),
		fixedpsnr.WithWarmStart(false),
		fixedpsnr.WithWorkers(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	f := snapshotField("qcloud", 0, 24, 48, 48)
	blob0, res0, err := enc.Encode(ctx, f)
	if err != nil {
		t.Fatal(err)
	}
	blob1, res1, err := enc.Encode(ctx, f)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Passes != res0.Passes {
		t.Fatalf("opt-out encode took %d passes, first took %d", res1.Passes, res0.Passes)
	}
	if len(blob0) != len(blob1) {
		t.Fatalf("opt-out re-encode differs: %d vs %d bytes", len(blob0), len(blob1))
	}
	for i := range blob0 {
		if blob0[i] != blob1[i] {
			t.Fatalf("opt-out re-encode differs at byte %d", i)
		}
	}
}
