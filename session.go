package fixedpsnr

import (
	"context"
	"fmt"
	"io"
	"math"
	"sync"

	"fixedpsnr/internal/codec"
	"fixedpsnr/internal/parallel"
)

// Encoder is a reusable, concurrency-safe compression session: one
// configuration, validated once, plus pooled scratch state (quantization
// codes, reconstruction buffers, transform blocks, staging bytes, DEFLATE
// writers) that is reused across calls so steady-state encoding stops
// allocating its large transients. A server holds one Encoder per
// configuration and shares it across request handlers; every method may
// be called from any number of goroutines concurrently.
//
//	enc, err := fixedpsnr.NewEncoder(
//		fixedpsnr.WithMode(fixedpsnr.ModePSNR),
//		fixedpsnr.WithTargetPSNR(80),
//	)
//	stream, res, err := enc.Encode(ctx, f)
//
// Every method takes a context.Context: cancellation aborts the
// compression within one slab/block of work per worker and surfaces
// ctx.Err().
//
// The one-shot Compress remains as a thin wrapper for scripts and tests;
// it is exactly Encode with context.Background() and no buffer reuse.
type Encoder struct {
	opt     Options
	scratch *codec.Scratch
	warm    *warmCache
}

// warmPoint is one cached solver settlement: the absolute bound a steered
// encode of a variable ended on, tagged with the request it answered so a
// later encode under different options never reuses it.
type warmPoint struct {
	mode   Mode
	target float64 // TargetPSNR or TargetRatio, per mode
	codec  string
	bound  float64
}

// warmCache holds per-field-name solver warm starts for one Encoder
// session: repeated snapshots of the same variable start their first
// pass at the bound the previous encode settled on instead of
// data-blind, so they converge in 1–2 passes. Safe for concurrent use;
// a nil cache (one-shot Compress) never hits.
type warmCache struct {
	mu sync.Mutex
	m  map[string]warmPoint
}

// steerTarget extracts the option value the steered mode aims at.
func steerTarget(opt Options) float64 {
	if opt.Mode == ModeRatio {
		return opt.TargetRatio
	}
	return opt.TargetPSNR
}

// lookup returns the cached bound for a field name when the cached point
// answers the same request (mode, target value, codec); ok is false
// otherwise. Unnamed fields never hit: distinct anonymous fields would
// otherwise share one entry and cross-seed each other's solver.
func (wc *warmCache) lookup(name string, opt Options) (bound float64, ok bool) {
	if wc == nil || name == "" {
		return 0, false
	}
	wc.mu.Lock()
	defer wc.mu.Unlock()
	wp, ok := wc.m[name]
	if !ok || wp.mode != opt.Mode || wp.target != steerTarget(opt) || wp.codec != opt.codecName() {
		return 0, false
	}
	if !(wp.bound > 0) || math.IsInf(wp.bound, 0) {
		return 0, false
	}
	return wp.bound, true
}

// store records the settled bound of a steered encode.
func (wc *warmCache) store(name string, opt Options, bound float64) {
	if wc == nil || name == "" || !(bound > 0) || math.IsInf(bound, 0) {
		return
	}
	wc.mu.Lock()
	defer wc.mu.Unlock()
	if wc.m == nil {
		wc.m = make(map[string]warmPoint)
	}
	wc.m[name] = warmPoint{
		mode:   opt.Mode,
		target: steerTarget(opt),
		codec:  opt.codecName(),
		bound:  bound,
	}
}

// Option configures an Encoder (functional options for NewEncoder).
type Option func(*Options)

// WithMode selects the error-control mode.
func WithMode(m Mode) Option { return func(o *Options) { o.Mode = m } }

// WithCompressor selects the compression pipeline.
func WithCompressor(c Compressor) Option { return func(o *Options) { o.Compressor = c } }

// WithCodecName selects a registered pipeline by registry name,
// overriding WithCompressor — the hook for codecs registered through the
// public fixedpsnr/codec package.
func WithCodecName(name string) Option { return func(o *Options) { o.Codec = name } }

// WithErrorBound sets the absolute bound for ModeAbs.
func WithErrorBound(eb float64) Option { return func(o *Options) { o.ErrorBound = eb } }

// WithRelBound sets the value-range-relative bound for ModeRel.
func WithRelBound(rel float64) Option { return func(o *Options) { o.RelBound = rel } }

// WithTargetPSNR sets the PSNR target in dB for ModePSNR.
func WithTargetPSNR(db float64) Option { return func(o *Options) { o.TargetPSNR = db } }

// WithPWRelBound sets the pointwise relative bound for ModePWRel.
func WithPWRelBound(rel float64) Option { return func(o *Options) { o.PWRelBound = rel } }

// WithTargetRatio sets the target compression ratio for ModeRatio.
func WithTargetRatio(r float64) Option { return func(o *Options) { o.TargetRatio = r } }

// WithCalibrated toggles the calibrated fixed-PSNR refinement loop.
func WithCalibrated(on bool) Option { return func(o *Options) { o.Calibrated = on } }

// WithToleranceDB sets the calibrated fixed-PSNR acceptance band in dB
// (0 = the default 0.5 dB).
func WithToleranceDB(db float64) Option { return func(o *Options) { o.ToleranceDB = db } }

// WithRatioTolerance sets the fixed-ratio acceptance band as a fraction
// of the target ratio (0 = the default 0.05).
func WithRatioTolerance(frac float64) Option { return func(o *Options) { o.RatioTolerance = frac } }

// WithMaxRefinePasses bounds the extra compression passes any steered
// quality target may take (0 = per-target default).
func WithMaxRefinePasses(n int) Option { return func(o *Options) { o.MaxRefinePasses = n } }

// WithRegionTargets steers sub-blocks of every encoded field to their own
// quality targets (a region of interest at high PSNR, the background at a
// cheap fixed ratio); chunks outside every region follow the field-level
// mode. See Options.RegionTargets.
func WithRegionTargets(rts ...RegionTarget) Option {
	return func(o *Options) { o.RegionTargets = append([]RegionTarget(nil), rts...) }
}

// WithWarmStart toggles the session's per-field-name solver warm start
// (on by default; see Options.NoWarmStart).
func WithWarmStart(on bool) Option { return func(o *Options) { o.NoWarmStart = !on } }

// WithCapacity sets the quantization interval count (0 = default).
func WithCapacity(n int) Option { return func(o *Options) { o.Capacity = n } }

// WithAutoCapacity estimates the capacity from the data (SZ pipeline).
func WithAutoCapacity(on bool) Option { return func(o *Options) { o.AutoCapacity = on } }

// WithWorkers bounds compression concurrency (0 = all CPUs).
func WithWorkers(n int) Option { return func(o *Options) { o.Workers = n } }

// WithChunkRows forces the chunk height in rows along the slowest
// dimension.
func WithChunkRows(n int) Option { return func(o *Options) { o.ChunkRows = n } }

// WithChunkPoints sets the target chunk size in points for the chunked
// container (see Options.ChunkPoints). Chunked streams decode
// region-by-region through Decoder.DecodeRegion and stream through
// Encoder.EncodeFrom with bounded memory.
func WithChunkPoints(n int) Option { return func(o *Options) { o.ChunkPoints = n } }

// WithLevel sets the DEFLATE level (0 = fastest).
func WithLevel(level int) Option { return func(o *Options) { o.Level = level } }

// WithBlockSize sets the transform block edge (transform pipeline).
func WithBlockSize(n int) Option { return func(o *Options) { o.BlockSize = n } }

// WithOptions replaces the whole option set at once — the migration path
// from code that already builds an Options value for Compress:
//
//	enc, err := fixedpsnr.NewEncoder(fixedpsnr.WithOptions(opt))
//
// Later Option arguments still apply on top of it.
func WithOptions(opt Options) Option { return func(o *Options) { *o = opt } }

// NewEncoder builds a compression session from functional options,
// validating the configuration once up front. The zero configuration is
// ModeAbs with no bound — valid only for constant fields — so most
// callers set at least a mode and its bound.
func NewEncoder(opts ...Option) (*Encoder, error) {
	var o Options
	for _, apply := range opts {
		apply(&o)
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return &Encoder{opt: o, scratch: codec.NewScratch(), warm: &warmCache{}}, nil
}

// Options returns a copy of the session configuration.
func (e *Encoder) Options() Options { return e.opt }

// Encode compresses one field and returns the self-describing stream
// plus a result summary. Cancelling ctx aborts the compression within
// one slab/block of work per worker and returns ctx.Err().
func (e *Encoder) Encode(ctx context.Context, f *Field) ([]byte, *Result, error) {
	return compress(ctx, f, e.opt, e.scratch, e.warm)
}

// EncodeTo compresses one field and writes the stream to w, for callers
// that sink straight into a file, socket, or ArchiveWriter without
// keeping the blob. The bytes written are identical to Encode's.
func (e *Encoder) EncodeTo(ctx context.Context, w io.Writer, f *Field) (*Result, error) {
	blob, res, err := e.Encode(ctx, f)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(blob); err != nil {
		return nil, fmt.Errorf("fixedpsnr: writing stream: %w", err)
	}
	return res, nil
}

// EncodeBatch compresses many fields over one shared worker pool — the
// snapshot workload: the session's Workers bound caps total concurrency
// across the batch, with the budget divided evenly across in-flight
// fields (at least one worker each), and all fields share the session's
// scratch pools. A single-field "batch" therefore compresses with the
// session's full parallelism rather than one core. Results are returned
// per field, in order. The first error (or ctx.Err() on cancellation)
// aborts the batch; in-flight fields finish, unstarted ones never run.
func (e *Encoder) EncodeBatch(ctx context.Context, fields []*Field) ([][]byte, []*Result, error) {
	if len(fields) == 0 {
		return nil, nil, fmt.Errorf("fixedpsnr: no fields to encode")
	}
	perField := e.opt
	perField.Workers = batchWorkers(e.opt.Workers, len(fields))
	streams := make([][]byte, len(fields))
	results := make([]*Result, len(fields))
	err := parallel.ForEachCtx(ctx, len(fields), e.opt.Workers, func(i int) error {
		blob, res, err := compress(ctx, fields[i], perField, e.scratch, e.warm)
		if err != nil {
			return fmt.Errorf("fixedpsnr: field %q: %w", fields[i].Name, err)
		}
		streams[i] = blob
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return streams, results, nil
}

// batchWorkers divides a session's worker budget (non-positive: all
// CPUs) evenly across the fields of a batch, at least one worker per
// field. The old behavior — every field pinned to one worker — starved
// small batches on big machines: a 2-field batch on a 16-core box used
// 2 cores.
func batchWorkers(budget, nfields int) int {
	if budget <= 0 {
		budget = parallel.DefaultWorkers()
	}
	per := budget / nfields
	if per < 1 {
		per = 1
	}
	return per
}

// Decoder is the decompression session paired with Encoder. Decoding
// routes by the codec byte in each stream header through the codec
// registry, so one Decoder reads streams from any registered pipeline.
// It holds sync.Pool-backed scratch buffers (inflate windows, Huffman
// decode tables, quantization-code slices) reused across calls, and is
// safe for concurrent use.
type Decoder struct {
	scratch *codec.Scratch
}

// NewDecoder builds a decompression session.
func NewDecoder() *Decoder { return &Decoder{scratch: codec.NewScratch()} }

// Decode reconstructs a field from any stream produced by an Encoder (or
// Compress). A cancelled ctx returns ctx.Err() without touching data.
func (d *Decoder) Decode(ctx context.Context, data []byte) (*Field, *StreamInfo, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	return codec.DecompressScratch(data, d.scratch)
}

// DecodeRegion reconstructs only the axis-aligned sub-block starting at
// off with extents ext (one entry per dimension) from a compressed
// stream — random access over the chunked container. Only the chunks the
// region's row window intersects are decoded, so latency and memory
// scale with the region, not the field, and the output is byte-identical
// to the matching slice of a full Decode. Streams without chunk-granular
// access fall back to a full decode plus crop.
func (d *Decoder) DecodeRegion(ctx context.Context, data []byte, off, ext []int) (*Field, *StreamInfo, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	return codec.DecompressRegionScratch(ctx, data, off, ext, d.scratch)
}

// DecodeFrom reads one complete compressed stream from r and
// reconstructs the field — the inverse of EncodeTo. The reader is
// consumed to EOF; framing (knowing where one stream ends when several
// are concatenated) is the archive container's job, not this method's.
func (d *Decoder) DecodeFrom(ctx context.Context, r io.Reader) (*Field, *StreamInfo, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, fmt.Errorf("fixedpsnr: reading stream: %w", err)
	}
	return d.Decode(ctx, data)
}
