package fixedpsnr

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"fixedpsnr/internal/codec"
	"fixedpsnr/internal/parallel"
)

// ArchiveWriter builds an archive incrementally against any io.Writer, so
// a multi-gigabyte snapshot compresses field-by-field without ever
// materializing the whole archive (or the whole field set) in memory.
// Entries stream out as they are written; the name→offset index is
// buffered (a few dozen bytes per field) and flushed by Close as the v2
// tail index.
//
//	aw, _ := fixedpsnr.NewArchiveWriter(file)
//	for _, path := range paths {
//		f, _ := fieldio.ReadFile(path) // one field in memory at a time
//		aw.WriteField(f, opt)
//	}
//	aw.Close()
type ArchiveWriter struct {
	w        io.Writer
	off      int64
	entries  []archiveEntry
	names    map[string]struct{}
	closed   bool
	closeErr error
}

// NewArchiveWriter starts a v2 archive on w by writing the archive
// preamble.
func NewArchiveWriter(w io.Writer) (*ArchiveWriter, error) {
	head := append(append([]byte{}, archiveMagic[:]...), archiveV2)
	if _, err := w.Write(head); err != nil {
		return nil, fmt.Errorf("fixedpsnr: archive preamble: %w", err)
	}
	return &ArchiveWriter{w: w, off: int64(len(head)), names: make(map[string]struct{})}, nil
}

// Count reports the number of entries written so far.
func (aw *ArchiveWriter) Count() int { return len(aw.entries) }

// WriteField compresses one field under opt and appends the stream to the
// archive. It is the one-shot form; WriteFieldEncoder adds cancellation
// and buffer reuse for multi-field snapshots.
func (aw *ArchiveWriter) WriteField(f *Field, opt Options) (*Result, error) {
	blob, res, err := Compress(f, opt)
	if err != nil {
		return nil, err
	}
	if err := aw.writeStreamNamed(f.Name, blob); err != nil {
		return nil, err
	}
	return res, nil
}

// WriteFieldEncoder compresses one field with the session encoder and
// appends the stream to the archive, so a snapshot's fields ride one
// Encoder: scratch buffers are reused field to field and a cancelled ctx
// aborts the in-flight compression with ctx.Err(). The archive itself is
// untouched by a failed call and can keep accepting fields.
func (aw *ArchiveWriter) WriteFieldEncoder(ctx context.Context, enc *Encoder, f *Field) (*Result, error) {
	blob, res, err := enc.Encode(ctx, f)
	if err != nil {
		return nil, err
	}
	if err := aw.writeStreamNamed(f.Name, blob); err != nil {
		return nil, err
	}
	return res, nil
}

// WriteStream appends an already-compressed stream (as produced by
// Compress) to the archive, indexing it under the field name recorded in
// its header.
func (aw *ArchiveWriter) WriteStream(blob []byte) error {
	h, err := codec.ParseHeader(blob)
	if err != nil {
		return fmt.Errorf("fixedpsnr: archive entry: %w", err)
	}
	return aw.writeStreamNamed(h.Name, blob)
}

// WriteStreamNamed appends an already-compressed stream under an
// explicit index name, regardless of the name recorded in its header —
// the primitive an archive-rewriting catalog uses to carry entries from
// one archive generation to the next without re-parsing them.
func (aw *ArchiveWriter) WriteStreamNamed(name string, blob []byte) error {
	return aw.writeStreamNamed(name, blob)
}

// writeStreamNamed appends raw stream bytes under an explicit index name.
// Duplicate names are rejected up front: the v2 tail index is a
// name→offset map, so a second entry under the same name would silently
// shadow the first for every index-based reader.
func (aw *ArchiveWriter) writeStreamNamed(name string, blob []byte) error {
	if aw.closed {
		return fmt.Errorf("fixedpsnr: archive writer is closed")
	}
	if len(aw.entries) >= maxArchiveEntries {
		return fmt.Errorf("fixedpsnr: archive full (%d entries)", len(aw.entries))
	}
	if _, dup := aw.names[name]; dup {
		return fmt.Errorf("fixedpsnr: archive already has a field named %q", name)
	}
	if _, err := aw.w.Write(blob); err != nil {
		return fmt.Errorf("fixedpsnr: archive entry %q: %w", name, err)
	}
	if aw.names == nil {
		aw.names = make(map[string]struct{})
	}
	aw.names[name] = struct{}{}
	aw.entries = append(aw.entries, archiveEntry{name: name, off: aw.off, length: int64(len(blob))})
	aw.off += int64(len(blob))
	return nil
}

// Close writes the tail index and footer. The writer is unusable
// afterwards; Close does not close the underlying io.Writer. A failed
// Close is sticky: repeated calls keep returning the original error.
func (aw *ArchiveWriter) Close() error {
	if aw.closed {
		return aw.closeErr
	}
	aw.closed = true
	idx := make([]byte, 0, 16+32*len(aw.entries))
	idx = append(idx, archiveIndexMagic[:]...)
	idx = binary.AppendUvarint(idx, uint64(len(aw.entries)))
	for _, e := range aw.entries {
		idx = binary.AppendUvarint(idx, uint64(len(e.name)))
		idx = append(idx, e.name...)
		idx = binary.AppendUvarint(idx, uint64(e.off))
		idx = binary.AppendUvarint(idx, uint64(e.length))
	}
	var footer [archiveFooterLen]byte
	binary.LittleEndian.PutUint64(footer[:8], uint64(aw.off))
	copy(footer[8:], archiveFooterMagic[:])
	if _, err := aw.w.Write(append(idx, footer[:]...)); err != nil {
		aw.closeErr = fmt.Errorf("fixedpsnr: archive index: %w", err)
	}
	return aw.closeErr
}

// ArchiveReader reads an archive through an io.ReaderAt without loading
// it wholesale: opening a v2 archive reads only the preamble, footer, and
// tail index, and each extraction reads only that entry's bytes. Version
// 1 archives (no index) are scanned once at open.
//
// Every method is safe for any number of concurrent readers after
// OpenArchive returns — the guarantee a long-running server relies on
// when it fans requests for the same archive across goroutines. The
// pieces that make it hold: the underlying io.ReaderAt is only touched
// through ReadAt (stateless by contract; *os.File and *bytes.Reader both
// qualify), parsed entry headers are cached behind an atomic pointer and
// treated as immutable from then on, and all decode transients come from
// the sync.Pool-backed scratch, so no extraction ever shares a mutable
// buffer with another. Close is the one exception: it must not race an
// in-flight extraction on a file-backed reader (the read would hit a
// closed fd) — owners that evict readers while requests are in flight
// must drain them first, as the serving layer's catalog does.
type ArchiveReader struct {
	r       io.ReaderAt
	size    int64
	version uint8
	entries []archiveEntry
	closer  io.Closer
	// closeOnce makes Close idempotent: the catalog layer may evict an
	// archive from several paths, and only the first close counts.
	closeOnce sync.Once
	closeErr  error
	// data is set when the archive is already an in-memory blob; reads
	// then slice it directly instead of copying through ReadAt.
	data []byte
	// hdrs caches parsed entry headers, one slot per entry, so repeated
	// region reads of one field parse its chunk table once instead of
	// per request. Cached headers are shared across callers and must be
	// treated as read-only.
	hdrs []atomic.Pointer[codec.Header]
	// scratch feeds region extraction's per-chunk decode transients;
	// sync.Pool-backed, so concurrent extracts share it safely.
	scratch *codec.Scratch
}

// OpenArchive opens an archive of the given total size. The reader keeps
// r and reads entries on demand; it never loads the whole v2 archive.
func OpenArchive(r io.ReaderAt, size int64) (*ArchiveReader, error) {
	return openArchive(&ArchiveReader{r: r, size: size})
}

// openArchiveBytes opens an in-memory archive blob zero-copy: entry
// reads alias data rather than duplicating it.
func openArchiveBytes(data []byte) (*ArchiveReader, error) {
	return openArchive(&ArchiveReader{
		r:    bytes.NewReader(data),
		size: int64(len(data)),
		data: data,
	})
}

func openArchive(ar *ArchiveReader) (*ArchiveReader, error) {
	ar.scratch = codec.NewScratch()
	var head [5]byte
	if ar.size < int64(len(head)) {
		return nil, fmt.Errorf("fixedpsnr: archive too short")
	}
	if _, err := ar.r.ReadAt(head[:], 0); err != nil {
		return nil, fmt.Errorf("fixedpsnr: archive preamble: %w", err)
	}
	if [4]byte(head[:4]) != archiveMagic {
		return nil, fmt.Errorf("fixedpsnr: bad archive magic %q", head[:4])
	}
	ar.version = head[4]
	switch head[4] {
	case archiveV1:
		if err := ar.openV1(); err != nil {
			return nil, err
		}
	case archiveV2:
		if err := ar.openV2(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("fixedpsnr: unsupported archive version %d", head[4])
	}
	ar.hdrs = make([]atomic.Pointer[codec.Header], len(ar.entries))
	return ar, nil
}

// readRange returns n bytes at off, slicing the backing blob when one is
// available. Callers must not modify the returned bytes.
func (ar *ArchiveReader) readRange(off, n int64) ([]byte, error) {
	if ar.data != nil {
		return ar.data[off : off+n : off+n], nil
	}
	buf := make([]byte, n)
	if _, err := ar.r.ReadAt(buf, off); err != nil {
		return nil, err
	}
	return buf, nil
}

// OpenArchiveFile opens an archive file; Close releases the file handle.
func OpenArchiveFile(path string) (*ArchiveReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	ar, err := OpenArchive(f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	ar.closer = f
	return ar, nil
}

// openV1 scans a legacy length-prefixed archive and parses every entry
// header to recover the index that v1 never stored.
func (ar *ArchiveReader) openV1() error {
	data := ar.data
	if data == nil {
		data = make([]byte, ar.size)
		if _, err := ar.r.ReadAt(data, 0); err != nil {
			return fmt.Errorf("fixedpsnr: reading v1 archive: %w", err)
		}
		// The whole v1 archive is resident anyway; let entry reads
		// slice it instead of re-reading through the ReaderAt.
		ar.data = data
	}
	streams, err := archiveEntriesV1(data)
	if err != nil {
		return err
	}
	ar.entries = make([]archiveEntry, len(streams))
	for i, s := range streams {
		h, err := codec.ParseHeader(s.blob)
		if err != nil {
			return fmt.Errorf("fixedpsnr: entry %d: %w", i, err)
		}
		ar.entries[i] = archiveEntry{name: h.Name, off: s.off, length: int64(len(s.blob))}
	}
	return nil
}

// openV2 loads the tail index.
func (ar *ArchiveReader) openV2() error {
	if ar.size < 5+int64(len(archiveIndexMagic))+1+archiveFooterLen {
		return fmt.Errorf("fixedpsnr: v2 archive too short for index")
	}
	var footer [archiveFooterLen]byte
	if _, err := ar.r.ReadAt(footer[:], ar.size-archiveFooterLen); err != nil {
		return fmt.Errorf("fixedpsnr: archive footer: %w", err)
	}
	if [4]byte(footer[8:12]) != archiveFooterMagic {
		return fmt.Errorf("fixedpsnr: missing archive footer magic (truncated archive?)")
	}
	idxOff := int64(binary.LittleEndian.Uint64(footer[:8]))
	idxEnd := ar.size - archiveFooterLen
	if idxOff < 5 || idxOff > idxEnd-int64(len(archiveIndexMagic)) {
		return fmt.Errorf("fixedpsnr: archive index offset %d outside [5,%d)", idxOff, idxEnd)
	}
	idx := make([]byte, idxEnd-idxOff)
	if _, err := ar.r.ReadAt(idx, idxOff); err != nil {
		return fmt.Errorf("fixedpsnr: archive index: %w", err)
	}
	entries, err := parseArchiveIndex(idx, idxOff)
	if err != nil {
		return err
	}
	ar.entries = entries
	return nil
}

// Len reports the number of entries.
func (ar *ArchiveReader) Len() int { return len(ar.entries) }

// Version reports the on-disk archive format version (1 or 2).
func (ar *ArchiveReader) Version() int { return int(ar.version) }

// Names lists the entry names in archive order.
func (ar *ArchiveReader) Names() []string {
	out := make([]string, len(ar.entries))
	for i, e := range ar.entries {
		out[i] = e.name
	}
	return out
}

// Stream returns the raw compressed stream of entry i. When the archive
// was opened from an in-memory blob the result aliases that blob; treat
// it as read-only.
func (ar *ArchiveReader) Stream(i int) ([]byte, error) {
	if i < 0 || i >= len(ar.entries) {
		return nil, fmt.Errorf("fixedpsnr: archive entry %d out of range [0,%d)", i, len(ar.entries))
	}
	e := ar.entries[i]
	buf, err := ar.readRange(e.off, e.length)
	if err != nil {
		return nil, fmt.Errorf("fixedpsnr: entry %d (%q): %w", i, e.name, err)
	}
	return buf, nil
}

// infoPrefixLen bounds the bytes Info reads per entry: far more than any
// realistic header (name + dims + chunk table), far less than a payload.
const infoPrefixLen = 64 << 10

// Info parses the stream header of entry i without decompressing — or,
// on a file-backed reader, even reading — its payload. The parsed header
// is cached for the life of the reader and shared by every caller: treat
// it as read-only.
func (ar *ArchiveReader) Info(i int) (*StreamInfo, error) {
	if i < 0 || i >= len(ar.entries) {
		return nil, fmt.Errorf("fixedpsnr: archive entry %d out of range [0,%d)", i, len(ar.entries))
	}
	if h := ar.hdrs[i].Load(); h != nil {
		return h, nil
	}
	h, err := ar.parseInfo(i)
	if err != nil {
		return nil, err
	}
	// A concurrent first Info may have raced us here; keep whichever
	// header landed first so every caller shares one instance.
	if !ar.hdrs[i].CompareAndSwap(nil, h) {
		h = ar.hdrs[i].Load()
	}
	return h, nil
}

// parseInfo reads and parses entry i's header prefix (the slow path
// behind Info's cache).
func (ar *ArchiveReader) parseInfo(i int) (*StreamInfo, error) {
	e := ar.entries[i]
	n := e.length
	if n > infoPrefixLen {
		n = infoPrefixLen
	}
	buf, err := ar.readRange(e.off, n)
	if err != nil {
		return nil, fmt.Errorf("fixedpsnr: entry %d (%q): %w", i, e.name, err)
	}
	h, err := codec.ParseHeaderPrefix(buf)
	if err != nil && n < e.length {
		// Pathologically large header (huge name or chunk table): fall
		// back to the whole entry.
		if buf, err = ar.readRange(e.off, e.length); err != nil {
			return nil, fmt.Errorf("fixedpsnr: entry %d (%q): %w", i, e.name, err)
		}
		h, err = codec.ParseHeaderPrefix(buf)
	}
	if err != nil {
		return nil, fmt.Errorf("fixedpsnr: entry %d: %w", i, err)
	}
	return h, nil
}

// ExtractAt decompresses entry i.
func (ar *ArchiveReader) ExtractAt(i int) (*Field, *StreamInfo, error) {
	blob, err := ar.Stream(i)
	if err != nil {
		return nil, nil, err
	}
	return codec.Decompress(blob)
}

// Extract decompresses the named entry. On a v2 archive only the index
// and this entry are read and parsed.
func (ar *ArchiveReader) Extract(name string) (*Field, *StreamInfo, error) {
	for i, e := range ar.entries {
		if e.name == name {
			return ar.ExtractAt(i)
		}
	}
	return nil, nil, fmt.Errorf("fixedpsnr: archive has no field %q", name)
}

// Index returns the entry index of the named field, or ok=false when the
// archive has no such entry.
func (ar *ArchiveReader) Index(name string) (i int, ok bool) {
	for i, e := range ar.entries {
		if e.name == name {
			return i, true
		}
	}
	return -1, false
}

// ChunkPayload reads the compressed payload of chunk ci of entry i — the
// byte-range primitive a decoded-chunk cache fills its misses from. Only
// that chunk's bytes are read; on an in-memory archive the result aliases
// the blob and must be treated as read-only.
func (ar *ArchiveReader) ChunkPayload(i, ci int) ([]byte, error) {
	h, err := ar.Info(i)
	if err != nil {
		return nil, err
	}
	if ci < 0 || ci >= len(h.Chunks) {
		return nil, fmt.Errorf("fixedpsnr: entry %d chunk %d out of range [0,%d)", i, ci, len(h.Chunks))
	}
	e := ar.entries[i]
	ck := h.Chunks[ci]
	lo := int64(h.PayloadOffset() + ck.Off)
	if lo+int64(ck.Len) > e.length {
		return nil, fmt.Errorf("fixedpsnr: entry %d chunk %d payload [%d,+%d) outside entry of %d bytes", i, ci, lo, ck.Len, e.length)
	}
	return ar.readRange(e.off+lo, int64(ck.Len))
}

// ExtractRegion decompresses only the sub-block starting at off with
// extents ext of the named entry. The access is chunk-granular end to
// end: the tail index locates the entry, the entry's header prefix
// supplies the chunk table, and only the payload byte ranges of the
// chunks the region intersects are read from the underlying ReaderAt —
// on a file-backed archive a small region of a huge field costs a few
// reads, not an entry scan. Streams without chunk-granular access fall
// back to reading and decoding the whole entry, then cropping.
func (ar *ArchiveReader) ExtractRegion(name string, off, ext []int) (*Field, *StreamInfo, error) {
	return ar.ExtractRegionContext(context.Background(), name, off, ext)
}

// ExtractRegionContext is ExtractRegion under a cancellable context: a
// cancelled ctx aborts the decode within one chunk of work per worker and
// returns ctx.Err() — the per-request form a server uses.
func (ar *ArchiveReader) ExtractRegionContext(ctx context.Context, name string, off, ext []int) (*Field, *StreamInfo, error) {
	i, ok := ar.Index(name)
	if !ok {
		return nil, nil, fmt.Errorf("fixedpsnr: archive has no field %q", name)
	}
	return ar.ExtractRegionAtContext(ctx, i, off, ext)
}

// ExtractRegionAt is ExtractRegion by entry index.
func (ar *ArchiveReader) ExtractRegionAt(i int, off, ext []int) (*Field, *StreamInfo, error) {
	return ar.ExtractRegionAtContext(context.Background(), i, off, ext)
}

// ExtractRegionAtContext is ExtractRegionContext by entry index.
func (ar *ArchiveReader) ExtractRegionAtContext(ctx context.Context, i int, off, ext []int) (*Field, *StreamInfo, error) {
	h, err := ar.Info(i)
	if err != nil {
		return nil, nil, err
	}
	e := ar.entries[i]
	f, err := codec.DecompressRegionFrom(ctx, h, func(ci int) ([]byte, error) {
		return ar.ChunkPayload(i, ci)
	}, off, ext, ar.scratch)
	if errors.Is(err, codec.ErrNotChunked) {
		// Whole-entry fallback for streams without chunk access.
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		full, _, ferr := ar.ExtractAt(i)
		if ferr != nil {
			return nil, nil, ferr
		}
		f, err = full.Slice(off, ext)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("fixedpsnr: entry %d (%q): %w", i, e.name, err)
	}
	return f, h, nil
}

// DecompressAll reconstructs every entry, in order, parallelizing across
// entries.
func (ar *ArchiveReader) DecompressAll() ([]*Field, error) {
	fields := make([]*Field, len(ar.entries))
	err := parallel.ForEach(len(ar.entries), 0, func(i int) error {
		f, _, err := ar.ExtractAt(i)
		if err != nil {
			return fmt.Errorf("fixedpsnr: entry %d: %w", i, err)
		}
		fields[i] = f
		return nil
	})
	if err != nil {
		return nil, err
	}
	return fields, nil
}

// Close releases the underlying file when the reader was opened with
// OpenArchiveFile; for byte-backed readers it is a no-op. Close is
// idempotent — a catalog can evict the same reader from several paths
// and only the first close touches the file — but it must not run
// concurrently with extractions on a file-backed reader (drain them
// first; see the type comment).
func (ar *ArchiveReader) Close() error {
	ar.closeOnce.Do(func() {
		if ar.closer != nil {
			ar.closeErr = ar.closer.Close()
		}
	})
	return ar.closeErr
}
