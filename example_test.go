package fixedpsnr_test

import (
	"bytes"
	"context"
	"fmt"
	"math"

	"fixedpsnr"
)

// Compress a field to a fixed 80 dB PSNR target in one pass.
func ExampleCompressFixedPSNR() {
	f := fixedpsnr.NewField("demo", fixedpsnr.Float32, 64, 64)
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			f.Set2(i, j, float64(float32(math.Sin(float64(i)/9)*math.Cos(float64(j)/7))))
		}
	}

	stream, res, err := fixedpsnr.CompressFixedPSNR(f, 80)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	g, _, err := fixedpsnr.Decompress(stream)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	d := fixedpsnr.CompareFields(f, g)
	fmt.Printf("target 80 dB, actual within 1 dB: %v\n", math.Abs(d.PSNR-80) < 1)
	fmt.Printf("derived ebrel = sqrt(3)*10^(-80/20): %v\n",
		math.Abs(res.EbRel-math.Sqrt(3)*1e-4) < 1e-15)
	// Output:
	// target 80 dB, actual within 1 dB: true
	// derived ebrel = sqrt(3)*10^(-80/20): true
}

// Derive the error bound for a PSNR target without compressing (Eq. 8).
func ExampleRelBoundForPSNR() {
	ebRel := fixedpsnr.RelBoundForPSNR(60)
	fmt.Printf("ebrel for 60 dB: %.6f\n", ebRel)
	fmt.Printf("Eq. 7 round trip: %.1f dB\n", fixedpsnr.EstimatePSNR(1, ebRel))
	// Output:
	// ebrel for 60 dB: 0.001732
	// Eq. 7 round trip: 60.0 dB
}

// Bound the absolute pointwise error instead of the PSNR.
func ExampleCompress_absoluteBound() {
	f := fixedpsnr.NewField("abs-demo", fixedpsnr.Float64, 500)
	for i := range f.Data {
		f.Data[i] = math.Sin(float64(i) / 20)
	}
	stream, _, err := fixedpsnr.Compress(f, fixedpsnr.Options{
		Mode:       fixedpsnr.ModeAbs,
		ErrorBound: 1e-4,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	g, _, _ := fixedpsnr.Decompress(stream)
	d := fixedpsnr.CompareFields(f, g)
	fmt.Printf("max error within bound: %v\n", d.MaxErr <= 1e-4)
	// Output:
	// max error within bound: true
}

// Hold one Encoder session and reuse it: scratch buffers persist across
// calls and a context can cancel long compressions.
func ExampleNewEncoder() {
	enc, err := fixedpsnr.NewEncoder(
		fixedpsnr.WithMode(fixedpsnr.ModePSNR),
		fixedpsnr.WithTargetPSNR(80),
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	dec := fixedpsnr.NewDecoder()
	ctx := context.Background()

	f := fixedpsnr.NewField("session-demo", fixedpsnr.Float32, 64, 64)
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			f.Set2(i, j, float64(float32(math.Sin(float64(i)/8)*math.Cos(float64(j)/5))))
		}
	}

	// The session compresses any number of fields; buffers are reused
	// call to call.
	for pass := 0; pass < 3; pass++ {
		stream, _, err := enc.Encode(ctx, f)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		g, _, err := dec.Decode(ctx, stream)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		if pass == 2 {
			d := fixedpsnr.CompareFields(f, g)
			fmt.Printf("pass %d within 1 dB of 80: %v\n", pass, math.Abs(d.PSNR-80) < 1)
		}
	}
	// Output:
	// pass 2 within 1 dB of 80: true
}

// Compress a whole snapshot over one shared worker pool.
func ExampleEncoder_EncodeBatch() {
	enc, err := fixedpsnr.NewEncoder(
		fixedpsnr.WithMode(fixedpsnr.ModePSNR),
		fixedpsnr.WithTargetPSNR(70),
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	var fields []*fixedpsnr.Field
	for _, name := range []string{"U", "V", "W"} {
		f := fixedpsnr.NewField(name, fixedpsnr.Float64, 48, 48)
		for i := range f.Data {
			f.Data[i] = math.Sin(float64(i) / 11)
		}
		fields = append(fields, f)
	}
	streams, results, err := enc.EncodeBatch(context.Background(), fields)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for i, f := range fields {
		fmt.Printf("%s: %d points, ratio > 1: %v\n",
			f.Name, results[i].NPoints, len(streams[i]) > 0 && results[i].Ratio > 1)
	}
	// Output:
	// U: 2304 points, ratio > 1: true
	// V: 2304 points, ratio > 1: true
	// W: 2304 points, ratio > 1: true
}

// Stream a compressed field through any io.Writer/io.Reader pair.
func ExampleEncoder_EncodeTo() {
	enc, err := fixedpsnr.NewEncoder(
		fixedpsnr.WithMode(fixedpsnr.ModeAbs),
		fixedpsnr.WithErrorBound(1e-3),
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	f := fixedpsnr.NewField("pipe", fixedpsnr.Float64, 400)
	for i := range f.Data {
		f.Data[i] = math.Cos(float64(i) / 15)
	}
	var wire bytes.Buffer
	if _, err := enc.EncodeTo(context.Background(), &wire, f); err != nil {
		fmt.Println("error:", err)
		return
	}
	g, _, err := fixedpsnr.NewDecoder().DecodeFrom(context.Background(), &wire)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	d := fixedpsnr.CompareFields(f, g)
	fmt.Printf("max error within bound: %v\n", d.MaxErr <= 1e-3)
	// Output:
	// max error within bound: true
}
