package fixedpsnr_test

import (
	"fmt"
	"math"

	"fixedpsnr"
)

// Compress a field to a fixed 80 dB PSNR target in one pass.
func ExampleCompressFixedPSNR() {
	f := fixedpsnr.NewField("demo", fixedpsnr.Float32, 64, 64)
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			f.Set2(i, j, float64(float32(math.Sin(float64(i)/9)*math.Cos(float64(j)/7))))
		}
	}

	stream, res, err := fixedpsnr.CompressFixedPSNR(f, 80)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	g, _, err := fixedpsnr.Decompress(stream)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	d := fixedpsnr.CompareFields(f, g)
	fmt.Printf("target 80 dB, actual within 1 dB: %v\n", math.Abs(d.PSNR-80) < 1)
	fmt.Printf("derived ebrel = sqrt(3)*10^(-80/20): %v\n",
		math.Abs(res.EbRel-math.Sqrt(3)*1e-4) < 1e-15)
	// Output:
	// target 80 dB, actual within 1 dB: true
	// derived ebrel = sqrt(3)*10^(-80/20): true
}

// Derive the error bound for a PSNR target without compressing (Eq. 8).
func ExampleRelBoundForPSNR() {
	ebRel := fixedpsnr.RelBoundForPSNR(60)
	fmt.Printf("ebrel for 60 dB: %.6f\n", ebRel)
	fmt.Printf("Eq. 7 round trip: %.1f dB\n", fixedpsnr.EstimatePSNR(1, ebRel))
	// Output:
	// ebrel for 60 dB: 0.001732
	// Eq. 7 round trip: 60.0 dB
}

// Bound the absolute pointwise error instead of the PSNR.
func ExampleCompress_absoluteBound() {
	f := fixedpsnr.NewField("abs-demo", fixedpsnr.Float64, 500)
	for i := range f.Data {
		f.Data[i] = math.Sin(float64(i) / 20)
	}
	stream, _, err := fixedpsnr.Compress(f, fixedpsnr.Options{
		Mode:       fixedpsnr.ModeAbs,
		ErrorBound: 1e-4,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	g, _, _ := fixedpsnr.Decompress(stream)
	d := fixedpsnr.CompareFields(f, g)
	fmt.Printf("max error within bound: %v\n", d.MaxErr <= 1e-4)
	// Output:
	// max error within bound: true
}
